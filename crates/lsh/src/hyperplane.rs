//! Random-hyperplane family for the cosine (angular) distance.
//!
//! Each hash function is a random hyperplane through the origin (paper
//! Example 2): the hash of a vector is which side of the hyperplane it
//! lies on. For two vectors at angle `θ` degrees the collision probability
//! is `1 − θ/180` (Example 6), i.e. `p(x) = 1 − x` for the normalized
//! angular distance `x = θ/180`.
//!
//! Hyperplane normals are sampled i.i.d. standard Gaussian per component
//! (any rotation-invariant distribution works). Normals are generated
//! deterministically from `(seed, function-index)` and memoized, so
//! function `i` is identical no matter when it is first evaluated.

use rand::{Rng, SeedableRng};

use crate::mix::derive_seed;

/// A family of random-hyperplane hash functions over `R^dim`.
///
/// Normals are stored as one contiguous **row-major matrix** (`row i` =
/// function `i`'s normal), so batch evaluation walks memory linearly
/// instead of chasing one heap allocation per function.
#[derive(Debug, Clone)]
pub struct HyperplaneFamily {
    dim: usize,
    seed: u64,
    /// Memoized hyperplane normals, row-major: function `i` occupies
    /// `matrix[i*dim .. (i+1)*dim]`.
    matrix: Vec<f64>,
}

impl HyperplaneFamily {
    /// Creates a family for `dim`-dimensional vectors.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            seed,
            matrix: Vec::new(),
        }
    }

    /// The vector dimension this family hashes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Ensures functions `0..n` are materialized.
    pub fn ensure_functions(&mut self, n: usize) {
        while self.num_functions() < n {
            let idx = self.num_functions() as u64;
            let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(self.seed, idx));
            self.matrix
                .extend((0..self.dim).map(|_| gaussian(&mut rng)));
        }
    }

    /// Number of materialized functions.
    pub fn num_functions(&self) -> usize {
        self.matrix.len() / self.dim
    }

    /// The normal of function `fn_index` (a row of the matrix).
    #[inline]
    fn normal(&self, fn_index: usize) -> &[f64] {
        &self.matrix[fn_index * self.dim..(fn_index + 1) * self.dim]
    }

    /// Evaluates hash function `fn_index` on `v`: returns `1` when `v` lies
    /// on the positive side of the hyperplane, else `0`.
    ///
    /// # Panics
    /// Panics if the function is not materialized (call
    /// [`HyperplaneFamily::ensure_functions`] first) or dimensions differ.
    #[inline]
    pub fn hash(&self, fn_index: usize, v: &[f64]) -> u64 {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let dot: f64 = self
            .normal(fn_index)
            .iter()
            .zip(v.iter())
            .map(|(n, x)| n * x)
            .sum();
        u64::from(dot >= 0.0)
    }

    /// Evaluates many hash functions on one vector. The requested rows of
    /// the normal matrix are walked contiguously and `v` stays cache-hot
    /// across all dot products; each `out[i]` receives exactly what
    /// `hash(fn_indices[i], v)` would (the per-function summation order is
    /// identical, so results are bit-for-bit the same).
    ///
    /// # Panics
    /// Panics if lengths differ, the dimension mismatches, or a function
    /// is not materialized.
    pub fn hash_batch(&self, fn_indices: &[usize], v: &[f64], out: &mut [u64]) {
        assert_eq!(fn_indices.len(), out.len(), "output length mismatch");
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        for (o, &i) in out.iter_mut().zip(fn_indices) {
            let dot: f64 = self
                .normal(i)
                .iter()
                .zip(v.iter())
                .map(|(n, x)| n * x)
                .sum();
            *o = u64::from(dot >= 0.0);
        }
    }

    /// Collision probability `p(x) = 1 − x` at normalized angular distance
    /// `x` (paper Example 6).
    pub fn collision_prob(x: f64) -> f64 {
        1.0 - x
    }
}

/// One standard Gaussian sample via Box–Muller (we avoid the `rand_distr`
/// dependency; this is off the hot path — normals are memoized).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 > f64::EPSILON {
            let u2: f64 = rng.random();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family(dim: usize, n: usize) -> HyperplaneFamily {
        let mut f = HyperplaneFamily::new(dim, 7);
        f.ensure_functions(n);
        f
    }

    #[test]
    fn deterministic_across_instances() {
        let f1 = family(8, 16);
        let f2 = family(8, 16);
        let v: Vec<f64> = (0..8).map(|i| (i as f64).sin()).collect();
        for i in 0..16 {
            assert_eq!(f1.hash(i, &v), f2.hash(i, &v));
        }
    }

    #[test]
    fn growth_order_does_not_change_functions() {
        let mut f1 = HyperplaneFamily::new(4, 3);
        f1.ensure_functions(2);
        f1.ensure_functions(10);
        let f2 = family_with_seed(4, 10, 3);
        let v = [0.3, -0.7, 0.1, 0.9];
        for i in 0..10 {
            assert_eq!(f1.hash(i, &v), f2.hash(i, &v));
        }
    }

    fn family_with_seed(dim: usize, n: usize, seed: u64) -> HyperplaneFamily {
        let mut f = HyperplaneFamily::new(dim, seed);
        f.ensure_functions(n);
        f
    }

    #[test]
    fn identical_vectors_always_collide() {
        let f = family(16, 64);
        let v: Vec<f64> = (0..16).map(|i| (i as f64 * 0.37).cos()).collect();
        for i in 0..64 {
            assert_eq!(f.hash(i, &v), f.hash(i, &v));
        }
    }

    #[test]
    fn scaled_vector_hashes_identically() {
        // Hyperplane hashing depends only on direction.
        let f = family(8, 32);
        let v: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let w: Vec<f64> = v.iter().map(|x| x * 5.0).collect();
        for i in 0..32 {
            assert_eq!(f.hash(i, &v), f.hash(i, &w));
        }
    }

    #[test]
    fn opposite_vectors_rarely_collide() {
        let f = family(8, 256);
        let v: Vec<f64> = (0..8).map(|i| (i as f64 * 0.61).sin() + 0.1).collect();
        let neg: Vec<f64> = v.iter().map(|x| -x).collect();
        let collisions = (0..256)
            .filter(|&i| f.hash(i, &v) == f.hash(i, &neg))
            .count();
        // p(collision) = 1 − 180/180 = 0 up to the dot == 0 edge case.
        assert_eq!(collisions, 0);
    }

    #[test]
    fn empirical_collision_rate_matches_angle() {
        // Two vectors at 60°: p = 1 − 60/180 = 2/3. With 4000 functions the
        // sample rate should be within a few percent.
        let f = family(2, 4000);
        let a = [1.0, 0.0];
        let b = [0.5, 3.0_f64.sqrt() / 2.0]; // 60 degrees from a
        let collisions = (0..4000)
            .filter(|&i| f.hash(i, &a) == f.hash(i, &b))
            .count();
        let rate = collisions as f64 / 4000.0;
        assert!(
            (rate - 2.0 / 3.0).abs() < 0.03,
            "rate {rate} too far from 2/3"
        );
    }

    #[test]
    fn different_seeds_give_different_families() {
        let f1 = family_with_seed(4, 64, 1);
        let f2 = family_with_seed(4, 64, 2);
        let v = [0.2, -0.4, 0.8, -0.1];
        let same = (0..64)
            .filter(|&i| f1.hash(i, &v) == f2.hash(i, &v))
            .count();
        assert!(same < 64, "independent families should differ somewhere");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let f = family(4, 1);
        let _ = f.hash(0, &[1.0, 2.0]);
    }

    #[test]
    fn batch_matches_scalar() {
        let f = family(16, 200);
        let v: Vec<f64> = (0..16).map(|i| (i as f64 * 0.73).sin() - 0.2).collect();
        // Scattered, repeated, and out-of-order function indices.
        let idx: Vec<usize> = vec![199, 0, 7, 7, 42, 100, 3, 198, 1];
        let mut out = vec![9u64; idx.len()];
        f.hash_batch(&idx, &v, &mut out);
        for (&i, &o) in idx.iter().zip(&out) {
            assert_eq!(o, f.hash(i, &v));
        }
    }

    #[test]
    fn flat_matrix_preserves_function_identity() {
        // A family grown in two steps agrees with one grown at once for
        // every function (the matrix layout must not perturb sampling).
        let mut f1 = HyperplaneFamily::new(6, 9);
        f1.ensure_functions(3);
        f1.ensure_functions(40);
        let f2 = family_with_seed(6, 40, 9);
        let v: Vec<f64> = (0..6).map(|i| (i as f64) * 0.31 - 1.0).collect();
        let idx: Vec<usize> = (0..40).collect();
        let (mut o1, mut o2) = (vec![0u64; 40], vec![0u64; 40]);
        f1.hash_batch(&idx, &v, &mut o1);
        f2.hash_batch(&idx, &v, &mut o2);
        assert_eq!(o1, o2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn batch_dimension_mismatch_panics() {
        let f = family(4, 1);
        let mut out = [0u64; 1];
        f.hash_batch(&[0], &[1.0, 2.0], &mut out);
    }

    #[test]
    fn gaussian_moments_sane() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
