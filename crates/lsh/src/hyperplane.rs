//! Random-hyperplane family for the cosine (angular) distance.
//!
//! Each hash function is a random hyperplane through the origin (paper
//! Example 2): the hash of a vector is which side of the hyperplane it
//! lies on. For two vectors at angle `θ` degrees the collision probability
//! is `1 − θ/180` (Example 6), i.e. `p(x) = 1 − x` for the normalized
//! angular distance `x = θ/180`.
//!
//! Hyperplane normals are sampled i.i.d. standard Gaussian per component
//! (any rotation-invariant distribution works). Normals are generated
//! deterministically from `(seed, function-index)` and memoized, so
//! function `i` is identical no matter when it is first evaluated.

use rand::{Rng, SeedableRng};

use crate::mix::derive_seed;

/// Maximum number of dot products accumulated together by the panel
/// kernel. Sized so the accumulator array lives in registers/L1 (32
/// lanes = 256 bytes) while still giving the autovectorizer full-width
/// independent FMA chains.
const RUN_LANES: usize = 32;

/// Minimum contiguous-run length at which [`HyperplaneFamily::hash_batch`]
/// switches from per-row dot products to the column-panel kernel. Below
/// this the panel's strided column loads cost more than they save.
const MIN_RUN: usize = 4;

/// A family of random-hyperplane hash functions over `R^dim`.
///
/// Normals are stored twice, both contiguous: a **row-major matrix**
/// (`row i` = function `i`'s normal) serving single-function evaluation,
/// and a **column-major panel** (`panel[d·n + i]` = component `d` of
/// function `i`) serving batched evaluation of contiguous function
/// ranges with a flat, branch-free, autovectorization-friendly inner
/// loop. Both are rebuilt together by
/// [`HyperplaneFamily::ensure_functions`], so they always describe the
/// same functions.
#[derive(Debug, Clone)]
pub struct HyperplaneFamily {
    dim: usize,
    seed: u64,
    /// Memoized hyperplane normals, row-major: function `i` occupies
    /// `matrix[i*dim .. (i+1)*dim]`.
    matrix: Vec<f64>,
    /// The same normals, column-major: component `d` of all functions is
    /// the contiguous slice `panel[d*n .. (d+1)*n]` for
    /// `n = num_functions()`. Lets the batched kernel accumulate many
    /// dot products with unit-stride loads.
    panel: Vec<f64>,
}

impl HyperplaneFamily {
    /// Creates a family for `dim`-dimensional vectors.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            seed,
            matrix: Vec::new(),
            panel: Vec::new(),
        }
    }

    /// The vector dimension this family hashes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Ensures functions `0..n` are materialized.
    pub fn ensure_functions(&mut self, n: usize) {
        let before = self.num_functions();
        while self.num_functions() < n {
            let idx = self.num_functions() as u64;
            let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(self.seed, idx));
            self.matrix
                .extend((0..self.dim).map(|_| gaussian(&mut rng)));
        }
        if self.num_functions() != before {
            self.rebuild_panel();
        }
    }

    /// Rebuilds the column-major panel from the row-major matrix. `O(n·d)`
    /// per growth step — growth happens once per level transition, far off
    /// the per-record hot path.
    fn rebuild_panel(&mut self) {
        let n = self.num_functions();
        self.panel.clear();
        self.panel.resize(n * self.dim, 0.0);
        for i in 0..n {
            for d in 0..self.dim {
                self.panel[d * n + i] = self.matrix[i * self.dim + d];
            }
        }
    }

    /// Number of materialized functions.
    pub fn num_functions(&self) -> usize {
        self.matrix.len() / self.dim
    }

    /// The normal of function `fn_index` (a row of the matrix).
    #[inline]
    fn normal(&self, fn_index: usize) -> &[f64] {
        &self.matrix[fn_index * self.dim..(fn_index + 1) * self.dim]
    }

    /// Evaluates hash function `fn_index` on `v`: returns `1` when `v` lies
    /// on the positive side of the hyperplane, else `0`.
    ///
    /// # Panics
    /// Panics if the function is not materialized (call
    /// [`HyperplaneFamily::ensure_functions`] first) or dimensions differ.
    #[inline]
    pub fn hash(&self, fn_index: usize, v: &[f64]) -> u64 {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        self.sign_row(fn_index, v)
    }

    /// One row-major dot product and sign, summed in ascending dimension
    /// order — the reference order every other evaluation path reproduces.
    #[inline]
    fn sign_row(&self, fn_index: usize, v: &[f64]) -> u64 {
        let dot: f64 = self
            .normal(fn_index)
            .iter()
            .zip(v.iter())
            .map(|(n, x)| n * x)
            .sum();
        u64::from(dot >= 0.0)
    }

    /// Evaluates many hash functions on one vector. Maximal runs of
    /// consecutive ascending function indices — the shape every level plan
    /// requests — are evaluated through the column-major panel:
    /// `RUN_LANES` dot products accumulate together in a flat array with
    /// unit-stride loads and no per-element branching, so the compiler
    /// vectorizes the inner loop. Scattered or descending indices fall
    /// back to per-row dot products. Each `out[i]` receives exactly what
    /// `hash(fn_indices[i], v)` would: the panel kernel adds each
    /// function's terms in the same ascending dimension order as the
    /// row-major sum, so results are **bit-for-bit** the same.
    ///
    /// # Panics
    /// Panics if lengths differ, the dimension mismatches, or a function
    /// is not materialized.
    pub fn hash_batch(&self, fn_indices: &[usize], v: &[f64], out: &mut [u64]) {
        assert_eq!(fn_indices.len(), out.len(), "output length mismatch");
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let mut start = 0;
        while start < fn_indices.len() {
            // Extend the maximal consecutive ascending run from `start`.
            let mut end = start + 1;
            while end < fn_indices.len() && fn_indices[end] == fn_indices[end - 1] + 1 {
                end += 1;
            }
            if end - start >= MIN_RUN {
                self.hash_run(fn_indices[start], v, &mut out[start..end]);
            } else {
                for (o, &i) in out[start..end].iter_mut().zip(&fn_indices[start..end]) {
                    *o = self.sign_row(i, v);
                }
            }
            start = end;
        }
    }

    /// Panel kernel: hashes functions `first .. first + out.len()` into
    /// `out`. Processes [`RUN_LANES`] functions at a time; for each block
    /// the outer loop walks dimensions and the inner loop accumulates one
    /// multiply per lane from a unit-stride panel slice. Accumulator `i`
    /// receives `panel[d][first+i] · v[d]` for `d = 0, 1, …` — the exact
    /// fold order of [`HyperplaneFamily::sign_row`] — so the result is
    /// bit-identical to the row path.
    fn hash_run(&self, first: usize, v: &[f64], out: &mut [u64]) {
        let n = self.num_functions();
        let mut done = 0;
        while done < out.len() {
            let len = (out.len() - done).min(RUN_LANES);
            let base = first + done;
            let mut acc = [0.0f64; RUN_LANES];
            for (d, &x) in v.iter().enumerate() {
                let col = &self.panel[d * n + base..d * n + base + len];
                for (a, &m) in acc[..len].iter_mut().zip(col) {
                    *a += m * x;
                }
            }
            for (o, &a) in out[done..done + len].iter_mut().zip(&acc[..len]) {
                *o = u64::from(a >= 0.0);
            }
            done += len;
        }
    }

    /// Collision probability `p(x) = 1 − x` at normalized angular distance
    /// `x` (paper Example 6).
    pub fn collision_prob(x: f64) -> f64 {
        1.0 - x
    }
}

/// One standard Gaussian sample via Box–Muller (we avoid the `rand_distr`
/// dependency; this is off the hot path — normals are memoized).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 > f64::EPSILON {
            let u2: f64 = rng.random();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family(dim: usize, n: usize) -> HyperplaneFamily {
        let mut f = HyperplaneFamily::new(dim, 7);
        f.ensure_functions(n);
        f
    }

    #[test]
    fn deterministic_across_instances() {
        let f1 = family(8, 16);
        let f2 = family(8, 16);
        let v: Vec<f64> = (0..8).map(|i| (i as f64).sin()).collect();
        for i in 0..16 {
            assert_eq!(f1.hash(i, &v), f2.hash(i, &v));
        }
    }

    #[test]
    fn growth_order_does_not_change_functions() {
        let mut f1 = HyperplaneFamily::new(4, 3);
        f1.ensure_functions(2);
        f1.ensure_functions(10);
        let f2 = family_with_seed(4, 10, 3);
        let v = [0.3, -0.7, 0.1, 0.9];
        for i in 0..10 {
            assert_eq!(f1.hash(i, &v), f2.hash(i, &v));
        }
    }

    fn family_with_seed(dim: usize, n: usize, seed: u64) -> HyperplaneFamily {
        let mut f = HyperplaneFamily::new(dim, seed);
        f.ensure_functions(n);
        f
    }

    #[test]
    fn identical_vectors_always_collide() {
        let f = family(16, 64);
        let v: Vec<f64> = (0..16).map(|i| (i as f64 * 0.37).cos()).collect();
        for i in 0..64 {
            assert_eq!(f.hash(i, &v), f.hash(i, &v));
        }
    }

    #[test]
    fn scaled_vector_hashes_identically() {
        // Hyperplane hashing depends only on direction.
        let f = family(8, 32);
        let v: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let w: Vec<f64> = v.iter().map(|x| x * 5.0).collect();
        for i in 0..32 {
            assert_eq!(f.hash(i, &v), f.hash(i, &w));
        }
    }

    #[test]
    fn opposite_vectors_rarely_collide() {
        let f = family(8, 256);
        let v: Vec<f64> = (0..8).map(|i| (i as f64 * 0.61).sin() + 0.1).collect();
        let neg: Vec<f64> = v.iter().map(|x| -x).collect();
        let collisions = (0..256)
            .filter(|&i| f.hash(i, &v) == f.hash(i, &neg))
            .count();
        // p(collision) = 1 − 180/180 = 0 up to the dot == 0 edge case.
        assert_eq!(collisions, 0);
    }

    #[test]
    fn empirical_collision_rate_matches_angle() {
        // Two vectors at 60°: p = 1 − 60/180 = 2/3. With 4000 functions the
        // sample rate should be within a few percent.
        let f = family(2, 4000);
        let a = [1.0, 0.0];
        let b = [0.5, 3.0_f64.sqrt() / 2.0]; // 60 degrees from a
        let collisions = (0..4000)
            .filter(|&i| f.hash(i, &a) == f.hash(i, &b))
            .count();
        let rate = collisions as f64 / 4000.0;
        assert!(
            (rate - 2.0 / 3.0).abs() < 0.03,
            "rate {rate} too far from 2/3"
        );
    }

    #[test]
    fn different_seeds_give_different_families() {
        let f1 = family_with_seed(4, 64, 1);
        let f2 = family_with_seed(4, 64, 2);
        let v = [0.2, -0.4, 0.8, -0.1];
        let same = (0..64)
            .filter(|&i| f1.hash(i, &v) == f2.hash(i, &v))
            .count();
        assert!(same < 64, "independent families should differ somewhere");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let f = family(4, 1);
        let _ = f.hash(0, &[1.0, 2.0]);
    }

    #[test]
    fn batch_matches_scalar() {
        let f = family(16, 200);
        let v: Vec<f64> = (0..16).map(|i| (i as f64 * 0.73).sin() - 0.2).collect();
        // Scattered, repeated, and out-of-order function indices.
        let idx: Vec<usize> = vec![199, 0, 7, 7, 42, 100, 3, 198, 1];
        let mut out = vec![9u64; idx.len()];
        f.hash_batch(&idx, &v, &mut out);
        for (&i, &o) in idx.iter().zip(&out) {
            assert_eq!(o, f.hash(i, &v));
        }
    }

    #[test]
    fn flat_matrix_preserves_function_identity() {
        // A family grown in two steps agrees with one grown at once for
        // every function (the matrix layout must not perturb sampling).
        let mut f1 = HyperplaneFamily::new(6, 9);
        f1.ensure_functions(3);
        f1.ensure_functions(40);
        let f2 = family_with_seed(6, 40, 9);
        let v: Vec<f64> = (0..6).map(|i| (i as f64) * 0.31 - 1.0).collect();
        let idx: Vec<usize> = (0..40).collect();
        let (mut o1, mut o2) = (vec![0u64; 40], vec![0u64; 40]);
        f1.hash_batch(&idx, &v, &mut o1);
        f2.hash_batch(&idx, &v, &mut o2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn panel_runs_match_scalar_bitwise() {
        // Contiguous runs of every length from 1 (row fallback) through
        // several RUN_LANES blocks plus a ragged tail, at varied start
        // offsets: each must reproduce the scalar path bit-for-bit.
        let f = family(33, 200); // odd dim: exercises non-power-of-two loops
        let v: Vec<f64> = (0..33).map(|i| (i as f64 * 0.41).sin() - 0.13).collect();
        for start in [0usize, 1, 7, 31, 32, 63] {
            for len in [1usize, 3, 4, 5, 31, 32, 33, 64, 70, 100] {
                if start + len > 200 {
                    continue;
                }
                let idx: Vec<usize> = (start..start + len).collect();
                let mut out = vec![9u64; len];
                f.hash_batch(&idx, &v, &mut out);
                for (&i, &o) in idx.iter().zip(&out) {
                    assert_eq!(o, f.hash(i, &v), "start={start} len={len} fn={i}");
                }
            }
        }
    }

    #[test]
    fn mixed_runs_and_scattered_indices_match_scalar() {
        let f = family(16, 128);
        let v: Vec<f64> = (0..16).map(|i| (i as f64 * 0.9).cos()).collect();
        // A scattered prefix, a long run, a short run, a descending pair.
        let mut idx: Vec<usize> = vec![90, 2, 2, 50];
        idx.extend(10..70); // 60-long contiguous run
        idx.extend([100, 101, 102]); // below MIN_RUN
        idx.extend([80, 79]); // descending: two 1-runs
        let mut out = vec![0u64; idx.len()];
        f.hash_batch(&idx, &v, &mut out);
        for (&i, &o) in idx.iter().zip(&out) {
            assert_eq!(o, f.hash(i, &v));
        }
    }

    #[test]
    fn panel_mirrors_matrix_after_growth() {
        let mut f = HyperplaneFamily::new(5, 21);
        f.ensure_functions(7);
        f.ensure_functions(50);
        let n = f.num_functions();
        for i in 0..n {
            for d in 0..5 {
                assert_eq!(
                    f.panel[d * n + i].to_bits(),
                    f.matrix[i * 5 + d].to_bits(),
                    "fn {i} dim {d}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn batch_dimension_mismatch_panics() {
        let f = family(4, 1);
        let mut out = [0u64; 1];
        f.hash_batch(&[0], &[1.0, 2.0], &mut out);
    }

    #[test]
    fn gaussian_moments_sane() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
