//! Multi-field hashing schemes: AND rules, OR rules, weighted averages.
//!
//! Paper Appendix C extends the `(w,z)`-scheme machinery to records with
//! several fields:
//!
//! * **AND rules** (C.1) — every table concatenates `wᵢ` hash values from
//!   each field `i`; collision probability
//!   `1 − (1 − ∏ᵢ pᵢ^{wᵢ})ᶻ`; parameters chosen by Program (4)–(6).
//! * **OR rules** (C.2) — each field gets its own group of tables;
//!   collision probability `1 − ∏ᵢ (1 − pᵢ^{wᵢ})^{zᵢ}`; parameters chosen
//!   by Program (7)–(10).
//! * **Weighted-average rules** (C.3) — a plain `(w,z)`-scheme whose
//!   elementary functions are drawn by the two-step selection of
//!   Definition 7; Theorem 3 shows the induced family has
//!   `p(x̄) = 1 − d̄`, so the single-field optimizer applies unchanged.

use serde::{Deserialize, Serialize};

use crate::mix::derive_seed;
use crate::optimizer::{OptimizerInput, SchemeOptimizer};
use crate::prob::{simpson2, DEFAULT_INTERVALS};
use crate::scheme::WzScheme;

/// Per-field inputs of the multi-field programs.
pub struct FieldSpec<'a> {
    /// The field's distance threshold (constraint (6)/(9)/(10)).
    pub dthr: f64,
    /// The field's elementary collision probability `pᵢ(x)`.
    pub p: &'a dyn Fn(f64) -> f64,
}

// ---------------------------------------------------------------------------
// AND rules
// ---------------------------------------------------------------------------

/// An AND-rule scheme: `z` tables, each concatenating `ws[i]` hash values
/// from field `i` (paper Appendix C.1; `ws = [w, u]` in the two-field
/// exposition).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AndScheme {
    /// Hash functions per table drawn from each field's family.
    pub ws: Vec<u32>,
    /// Number of tables.
    pub z: u32,
}

impl AndScheme {
    /// Creates a scheme.
    ///
    /// # Panics
    /// Panics if any count is zero or `ws` is empty.
    pub fn new(ws: Vec<u32>, z: u32) -> Self {
        assert!(!ws.is_empty() && z > 0);
        assert!(ws.iter().all(|&w| w > 0), "all per-field widths positive");
        Self { ws, z }
    }

    /// Total budget `(Σ wᵢ) · z` (constraint (5)).
    pub fn budget(&self) -> u64 {
        self.ws.iter().map(|&w| u64::from(w)).sum::<u64>() * u64::from(self.z)
    }

    /// Collision probability `1 − (1 − ∏ pᵢ^{wᵢ})ᶻ` given per-field
    /// elementary probabilities.
    ///
    /// # Panics
    /// Panics if `ps.len() != ws.len()`.
    pub fn collision_prob(&self, ps: &[f64]) -> f64 {
        assert_eq!(ps.len(), self.ws.len());
        let prod: f64 = ps
            .iter()
            .zip(&self.ws)
            .map(|(&p, &w)| p.powi(w as i32))
            .product();
        1.0 - (1.0 - prod).powi(self.z as i32)
    }

    /// Does constraint (6) hold at the per-field thresholds?
    pub fn feasible(&self, fields: &[FieldSpec<'_>], epsilon: f64) -> bool {
        let ps: Vec<f64> = fields.iter().map(|f| (f.p)(f.dthr)).collect();
        self.collision_prob(&ps) >= 1.0 - epsilon
    }

    /// The Program-(4) objective `∫∫ [1 − (1 − ∏ pᵢ^{wᵢ})ᶻ] dx₁dx₂` for
    /// two fields (the paper's exposition; for other arities see
    /// [`AndScheme::objective_mc`]).
    pub fn objective2(&self, fields: &[FieldSpec<'_>]) -> f64 {
        assert_eq!(self.ws.len(), 2, "objective2 requires exactly two fields");
        assert_eq!(fields.len(), 2);
        simpson2(
            |x1, x2| self.collision_prob(&[(fields[0].p)(x1), (fields[1].p)(x2)]),
            DEFAULT_INTERVALS / 4,
        )
    }

    /// Midpoint-grid objective for any arity (coarse but sufficient to
    /// rank candidates).
    pub fn objective_mc(&self, fields: &[FieldSpec<'_>], grid: usize) -> f64 {
        assert_eq!(fields.len(), self.ws.len());
        let f = fields.len();
        let mut total = 0.0;
        let mut idx = vec![0usize; f];
        let cells = grid.pow(f as u32);
        for _ in 0..cells {
            let ps: Vec<f64> = idx
                .iter()
                .zip(fields)
                .map(|(&i, fs)| (fs.p)((i as f64 + 0.5) / grid as f64))
                .collect();
            total += self.collision_prob(&ps);
            // odometer increment
            for digit in idx.iter_mut() {
                *digit += 1;
                if *digit < grid {
                    break;
                }
                *digit = 0;
            }
        }
        total / cells as f64
    }
}

/// Solves Program (4)–(6) for a two-field AND rule: enumerate table
/// widths `s = w + u` with `z = ⌊budget/s⌋` and compositions of `s`,
/// keep the feasible scheme with minimum objective. `min_ws`/`min_z`
/// carry the incremental-computation constraints `w ≥ w′`, `u ≥ u′`
/// discussed at the end of Appendix C.1.
///
/// Deviation from the paper's equality constraint (5): we relax to
/// `(w+u)·z ≤ budget` with at least 7/8 of the budget used. Insisting on
/// exact divisibility leaves whole budget values with only degenerate
/// compositions (e.g. budget 320 admits no `w+u = 3` scheme), which
/// produces needlessly blunt levels mid-sequence.
pub fn optimize_and2(
    budget: u64,
    fields: &[FieldSpec<'_>; 2],
    epsilon: f64,
    min_ws: [u32; 2],
    min_z: u32,
) -> Option<AndScheme> {
    let min_ws = [min_ws[0].max(1), min_ws[1].max(1)];
    let mut best: Option<(f64, AndScheme)> = None;
    for s in u64::from(min_ws[0] + min_ws[1])..=budget {
        let z = (budget / s) as u32;
        if z < min_z.max(1) {
            break;
        }
        if s * u64::from(z) * 8 < budget * 7 {
            continue; // too much budget left unused
        }
        // Enumerate w (field 0's width); coarsen for very large s — the
        // objective varies slowly in the composition and we only need a
        // near-optimal scheme.
        let s = s as u32;
        let step = (s / 128).max(1);
        let mut w = min_ws[0];
        while w + min_ws[1] <= s {
            let u = s - w;
            let cand = AndScheme::new(vec![w, u], z);
            if cand.feasible(fields, epsilon) {
                let obj = cand.objective2(fields);
                if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                    best = Some((obj, cand));
                }
            }
            w += step;
        }
    }
    best.map(|(_, s)| s)
}

// ---------------------------------------------------------------------------
// OR rules
// ---------------------------------------------------------------------------

/// An OR-rule scheme: field `i` gets its own `(wᵢ, zᵢ)` group of tables
/// (paper Appendix C.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrScheme {
    /// Per-field `(w, z)` schemes.
    pub parts: Vec<WzScheme>,
}

impl OrScheme {
    /// Total budget `Σ wᵢ·zᵢ` (constraint (8)).
    pub fn budget(&self) -> u64 {
        self.parts.iter().map(WzScheme::budget).sum()
    }

    /// Collision probability `1 − ∏ (1 − pᵢ^{wᵢ})^{zᵢ}`.
    pub fn collision_prob(&self, ps: &[f64]) -> f64 {
        assert_eq!(ps.len(), self.parts.len());
        let none: f64 = ps
            .iter()
            .zip(&self.parts)
            .map(|(&p, s)| (1.0 - p.powi(s.w as i32)).powi(s.z as i32))
            .product();
        1.0 - none
    }

    /// Constraints (9)–(10): *each field's own* scheme must nearly-surely
    /// collide at that field's threshold.
    pub fn feasible(&self, fields: &[FieldSpec<'_>], epsilon: f64) -> bool {
        self.parts
            .iter()
            .zip(fields)
            .all(|(s, f)| s.collision_prob((f.p)(f.dthr)) >= 1.0 - epsilon)
    }

    /// The Program-(7) objective for two fields.
    pub fn objective2(&self, fields: &[FieldSpec<'_>]) -> f64 {
        assert_eq!(self.parts.len(), 2);
        simpson2(
            |x1, x2| self.collision_prob(&[(fields[0].p)(x1), (fields[1].p)(x2)]),
            DEFAULT_INTERVALS / 4,
        )
    }
}

/// Solves Program (7)–(10) for a two-field OR rule: enumerate budget
/// splits `b₁ + b₂ = budget`, solve each field's single-field program for
/// its share, keep the feasible pair with minimum joint objective.
pub fn optimize_or2(
    budget: u64,
    fields: &[FieldSpec<'_>; 2],
    epsilon: f64,
    min_parts: [(u32, u32); 2],
) -> Option<OrScheme> {
    let mut best: Option<(f64, OrScheme)> = None;
    let step = (budget / 64).max(1);
    let mut b1 = 1u64;
    while b1 < budget {
        let b2 = budget - b1;
        let in1 = OptimizerInput::new(b1, fields[0].dthr, epsilon, fields[0].p)
            .with_min(min_parts[0].0, min_parts[0].1);
        let in2 = OptimizerInput::new(b2, fields[1].dthr, epsilon, fields[1].p)
            .with_min(min_parts[1].0, min_parts[1].1);
        if let (Some(s1), Some(s2)) = (
            SchemeOptimizer::optimize_divisor(&in1),
            SchemeOptimizer::optimize_divisor(&in2),
        ) {
            let cand = OrScheme {
                parts: vec![s1, s2],
            };
            if cand.feasible(fields, epsilon) {
                let obj = cand.objective2(fields);
                if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                    best = Some((obj, cand));
                }
            }
        }
        b1 += step;
    }
    best.map(|(_, s)| s)
}

// ---------------------------------------------------------------------------
// Weighted-average rules
// ---------------------------------------------------------------------------

/// Definition 7's two-step function selection for weighted-average rules:
/// hash function `j` first picks a field with probability `αᵢ`, then an
/// elementary function of that field's family. The selection is a pure
/// function of `(seed, j)`, preserving incremental computation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeightedSelection {
    /// Cumulative weight boundaries (last entry is 1.0).
    cdf: Vec<f64>,
    seed: u64,
}

impl WeightedSelection {
    /// Creates a selection over fields with the given weights.
    ///
    /// # Panics
    /// Panics if weights are empty, non-positive, or don't sum to 1
    /// (within `1e-9`).
    pub fn new(weights: &[f64], seed: u64) -> Self {
        assert!(!weights.is_empty());
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let total: f64 = weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "weights must sum to 1");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w;
            cdf.push(acc);
        }
        *cdf.last_mut().expect("non-empty") = 1.0;
        Self { cdf, seed }
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.cdf.len()
    }

    /// The field sampled for hash function `fn_index` (step (a) of
    /// Definition 7).
    pub fn field_for(&self, fn_index: usize) -> usize {
        let r = derive_seed(self.seed, fn_index as u64) as f64 / u64::MAX as f64;
        self.cdf
            .iter()
            .position(|&c| r < c)
            .unwrap_or(self.cdf.len() - 1)
    }

    /// Theorem 3's collision probability for the induced family at
    /// weighted distance `d̄`: `1 − d̄` when every per-field family has
    /// `pᵢ(x) = 1 − x`.
    pub fn collision_prob(d_bar: f64) -> f64 {
        1.0 - d_bar
    }

    /// Theorem 4's sensitivity mixture: given per-field probabilities
    /// `pᵢ` (each field's family evaluated at its own distance), the
    /// induced family's collision probability is `Σ αᵢ pᵢ`.
    pub fn mixture_prob(&self, per_field: &[f64]) -> f64 {
        assert_eq!(per_field.len(), self.cdf.len());
        let mut prev = 0.0;
        self.cdf
            .iter()
            .zip(per_field)
            .map(|(&c, &p)| {
                let alpha = c - prev;
                prev = c;
                alpha * p
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear(x: f64) -> f64 {
        1.0 - x
    }

    #[test]
    fn and_scheme_probability_formula() {
        // 1 − (1 − p₁ʷ p₂ᵘ)ᶻ with w=2, u=3, z=4.
        let s = AndScheme::new(vec![2, 3], 4);
        let (p1, p2): (f64, f64) = (0.9, 0.8);
        let expected = 1.0 - (1.0 - p1.powi(2) * p2.powi(3)).powi(4);
        assert!((s.collision_prob(&[p1, p2]) - expected).abs() < 1e-15);
        assert_eq!(s.budget(), 20);
    }

    #[test]
    fn and_optimizer_returns_feasible_near_budget() {
        let fields = [
            FieldSpec {
                dthr: 0.3,
                p: &linear,
            },
            FieldSpec {
                dthr: 0.2,
                p: &linear,
            },
        ];
        let s = optimize_and2(240, &fields, 0.01, [1, 1], 1).expect("feasible");
        assert!(s.budget() <= 240);
        assert!(s.budget() * 8 >= 240 * 7, "must use ≥ 7/8 of the budget");
        assert!(s.feasible(&fields, 0.01));
    }

    #[test]
    fn and_optimizer_honors_minimums() {
        let fields = [
            FieldSpec {
                dthr: 0.3,
                p: &linear,
            },
            FieldSpec {
                dthr: 0.2,
                p: &linear,
            },
        ];
        let s = optimize_and2(480, &fields, 0.01, [3, 2], 2).expect("feasible");
        assert!(s.ws[0] >= 3 && s.ws[1] >= 2 && s.z >= 2);
    }

    #[test]
    fn and_optimizer_infeasible_for_tiny_budget() {
        let fields = [
            FieldSpec {
                dthr: 0.5,
                p: &linear,
            },
            FieldSpec {
                dthr: 0.5,
                p: &linear,
            },
        ];
        assert!(optimize_and2(2, &fields, 1e-9, [1, 1], 1).is_none());
    }

    #[test]
    fn or_scheme_probability_formula() {
        let s = OrScheme {
            parts: vec![WzScheme::new(2, 3), WzScheme::new(4, 5)],
        };
        let (p1, p2): (f64, f64) = (0.7, 0.9);
        let expected = 1.0 - (1.0 - p1.powi(2)).powi(3) * (1.0 - p2.powi(4)).powi(5);
        assert!((s.collision_prob(&[p1, p2]) - expected).abs() < 1e-15);
        assert_eq!(s.budget(), 26);
    }

    #[test]
    fn or_optimizer_feasible_and_within_budget() {
        let fields = [
            FieldSpec {
                dthr: 0.3,
                p: &linear,
            },
            FieldSpec {
                dthr: 0.15,
                p: &linear,
            },
        ];
        let s = optimize_or2(512, &fields, 0.01, [(1, 1), (1, 1)]).expect("feasible");
        assert!(s.budget() <= 512);
        assert!(s.feasible(&fields, 0.01));
    }

    #[test]
    fn or_feasibility_is_per_field() {
        // A scheme whose second part is hopeless must be infeasible even
        // if the first part is strong.
        let s = OrScheme {
            parts: vec![WzScheme::new(1, 200), WzScheme::new(64, 1)],
        };
        let fields = [
            FieldSpec {
                dthr: 0.2,
                p: &linear,
            },
            FieldSpec {
                dthr: 0.2,
                p: &linear,
            },
        ];
        assert!(!s.feasible(&fields, 0.001));
    }

    #[test]
    fn weighted_selection_matches_weights() {
        let sel = WeightedSelection::new(&[0.25, 0.75], 42);
        let n = 40_000;
        let ones = (0..n).filter(|&i| sel.field_for(i) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    fn weighted_selection_deterministic() {
        let a = WeightedSelection::new(&[0.5, 0.5], 7);
        let b = WeightedSelection::new(&[0.5, 0.5], 7);
        for i in 0..100 {
            assert_eq!(a.field_for(i), b.field_for(i));
        }
    }

    #[test]
    fn mixture_prob_theorem4() {
        let sel = WeightedSelection::new(&[0.3, 0.7], 0);
        let p = sel.mixture_prob(&[0.9, 0.5]);
        assert!((p - (0.3 * 0.9 + 0.7 * 0.5)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn weighted_selection_rejects_bad_weights() {
        let _ = WeightedSelection::new(&[0.3, 0.3], 0);
    }

    #[test]
    fn objective_mc_agrees_with_simpson_roughly() {
        let fields = [
            FieldSpec {
                dthr: 0.3,
                p: &linear,
            },
            FieldSpec {
                dthr: 0.2,
                p: &linear,
            },
        ];
        let s = AndScheme::new(vec![3, 2], 8);
        let simpson = s.objective2(&fields);
        let mc = s.objective_mc(&fields, 64);
        assert!((simpson - mc).abs() < 0.01, "{simpson} vs {mc}");
    }
}
