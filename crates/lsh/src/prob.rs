//! Numeric integration helpers for the scheme optimizers.
//!
//! The objective of Program (1)–(3) (paper §5.1) is the area under the
//! collision-probability curve, `∫₀¹ [1 − (1 − pʷ(x))ᶻ] dx`; the
//! multi-field programs (Appendix C) integrate over `[0,1]²`. Composite
//! Simpson quadrature is plenty: the integrands are smooth and we only
//! compare candidate schemes against each other.

/// Composite Simpson integration of `f` over `[a, b]` with `n` intervals
/// (`n` is rounded up to even).
///
/// # Panics
/// Panics if `a > b` or `n == 0`.
pub fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(a <= b, "invalid interval");
    assert!(n > 0, "need at least one interval");
    if a == b {
        return 0.0;
    }
    let n = if n.is_multiple_of(2) { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let x = a + h * i as f64;
        sum += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    sum * h / 3.0
}

/// Composite Simpson integration of `f` over `[0,1] × [0,1]` with `n`
/// intervals per axis.
pub fn simpson2<F: Fn(f64, f64) -> f64>(f: F, n: usize) -> f64 {
    simpson(|x| simpson(|y| f(x, y), 0.0, 1.0, n), 0.0, 1.0, n)
}

/// Default interval count used by the optimizers: enough for ~6 correct
/// digits on these smooth curves, cheap enough for exhaustive searches.
pub const DEFAULT_INTERVALS: usize = 96;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_polynomial_exactly() {
        // Simpson is exact for cubics.
        let v = simpson(|x| 3.0 * x * x, 0.0, 1.0, 2);
        assert!((v - 1.0).abs() < 1e-12);
        let v = simpson(|x| x * x * x, 0.0, 2.0, 2);
        assert!((v - 4.0).abs() < 1e-12);
    }

    #[test]
    fn integrates_transcendental_accurately() {
        let v = simpson(f64::sin, 0.0, std::f64::consts::PI, 64);
        // Composite Simpson error ~ (b−a)·h⁴·max|f⁗|/180 ≈ 1e-7 here.
        assert!((v - 2.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_interval_is_zero() {
        assert_eq!(simpson(|x| x, 1.0, 1.0, 8), 0.0);
    }

    #[test]
    fn odd_interval_count_rounds_up() {
        let a = simpson(|x| x * x, 0.0, 1.0, 3);
        let b = simpson(|x| x * x, 0.0, 1.0, 4);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn two_dimensional_product() {
        // ∫∫ x·y = 1/4.
        let v = simpson2(|x, y| x * y, 16);
        assert!((v - 0.25).abs() < 1e-10);
    }

    #[test]
    fn scheme_objective_value() {
        // Area under 1 − (1 − p³(x))² with p = 1 − x: compare against a
        // high-resolution reference.
        let f = |x: f64| {
            let p: f64 = 1.0 - x;
            1.0 - (1.0 - p.powi(3)).powi(2)
        };
        let coarse = simpson(f, 0.0, 1.0, DEFAULT_INTERVALS);
        let fine = simpson(f, 0.0, 1.0, 4096);
        assert!((coarse - fine).abs() < 1e-8);
    }
}
