//! Scheme diagnostics: where does a scheme actually separate?
//!
//! The optimizer guarantees recall at the threshold (constraint (3)) and
//! minimizes the integrated false-positive area (objective (1)), but two
//! practical questions remain for a *given* dataset:
//!
//! * **Fuzzy zone** — over which distance band does the scheme's
//!   collision probability fall from "almost always" to "almost never"?
//!   Pairs inside the band are merged essentially at random; a heavy
//!   mass of pairs there (e.g. near-duplicate "versions" at 1.2× the
//!   threshold) makes the scheme's output unstable and is the tell-tale
//!   of a dataset that needs `P` verification.
//! * **Expected false-merge mass** — given a histogram of pair
//!   distances, how many beyond-threshold pairs does one invocation of
//!   the scheme merge in expectation?
//!
//! These diagnostics power the library's tuning guidance (and were used
//! to calibrate the experiment generators in `adalsh-datagen`).

use crate::scheme::Scheme;

/// The distance band over which a scheme's collision probability falls
/// from `hi` to `lo`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzyZone {
    /// Largest distance with collision probability ≥ `hi`.
    pub certain_until: f64,
    /// Smallest distance with collision probability ≤ `lo`.
    pub negligible_from: f64,
}

impl FuzzyZone {
    /// Band width `negligible_from − certain_until`.
    pub fn width(&self) -> f64 {
        self.negligible_from - self.certain_until
    }
}

/// Computes the fuzzy zone of `scheme` under elementary collision
/// probability `p(x)`, between probability levels `hi` (e.g. 0.99) and
/// `lo` (e.g. 0.01), by scanning `[0, 1]` at resolution `steps`.
///
/// # Panics
/// Panics unless `0 < lo < hi < 1` and `steps ≥ 2`.
pub fn fuzzy_zone(
    scheme: &Scheme,
    p: &dyn Fn(f64) -> f64,
    hi: f64,
    lo: f64,
    steps: usize,
) -> FuzzyZone {
    assert!(0.0 < lo && lo < hi && hi < 1.0, "need 0 < lo < hi < 1");
    assert!(steps >= 2);
    let mut certain_until = 0.0;
    let mut negligible_from = 1.0;
    let mut seen_negligible = false;
    for i in 0..=steps {
        let x = i as f64 / steps as f64;
        let c = scheme.collision_prob(p(x));
        if c >= hi {
            certain_until = x;
        }
        if c <= lo && !seen_negligible {
            negligible_from = x;
            seen_negligible = true;
        }
    }
    FuzzyZone {
        certain_until,
        negligible_from,
    }
}

/// Expected number of beyond-threshold pairs merged by one invocation of
/// `scheme`, given a histogram of pair distances: `histogram[i]` counts
/// pairs in the distance bin `[i/bins, (i+1)/bins)`.
pub fn expected_false_merges(
    scheme: &Scheme,
    p: &dyn Fn(f64) -> f64,
    dthr: f64,
    histogram: &[u64],
) -> f64 {
    assert!(!histogram.is_empty());
    let bins = histogram.len();
    histogram
        .iter()
        .enumerate()
        .map(|(i, &count)| {
            let mid = (i as f64 + 0.5) / bins as f64;
            if mid <= dthr {
                0.0
            } else {
                count as f64 * scheme.collision_prob(p(mid))
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear(x: f64) -> f64 {
        1.0 - x
    }

    #[test]
    fn fuzzy_zone_ordering() {
        let s = Scheme::pure(10, 40);
        let z = fuzzy_zone(&s, &linear, 0.99, 0.01, 400);
        assert!(z.certain_until < z.negligible_from);
        assert!(z.width() > 0.0);
    }

    #[test]
    fn sharper_schemes_have_narrower_zones_at_same_recall_point() {
        // Same "certain" point, bigger w·z: the drop is steeper.
        let blunt = Scheme::pure(2, 12);
        let sharp = Scheme::pure(8, 1500);
        let zb = fuzzy_zone(&blunt, &linear, 0.95, 0.05, 800);
        let zs = fuzzy_zone(&sharp, &linear, 0.95, 0.05, 800);
        // Compare relative widths (normalized by the certain point).
        let rel = |z: FuzzyZone| z.width() / z.negligible_from.max(1e-9);
        assert!(rel(zs) < rel(zb), "sharp {:?} vs blunt {:?}", zs, zb);
    }

    #[test]
    fn false_merges_counts_only_beyond_threshold() {
        let s = Scheme::pure(1, 1);
        // All mass below the threshold ⇒ zero false merges.
        let hist = [100, 100, 0, 0];
        assert_eq!(expected_false_merges(&s, &linear, 0.6, &hist), 0.0);
        // Mass far beyond the threshold with a permissive scheme.
        let hist = [0, 0, 0, 100];
        let fm = expected_false_merges(&s, &linear, 0.5, &hist);
        // Bin mid 0.875, p = 0.125 per pair, 100 pairs.
        assert!((fm - 12.5).abs() < 1e-9);
    }

    #[test]
    fn false_merges_shrink_with_sharper_schemes() {
        let hist = [0u64, 0, 50, 200, 400, 100];
        let blunt = Scheme::pure(1, 20);
        let sharp = Scheme::pure(6, 400);
        let fb = expected_false_merges(&blunt, &linear, 0.3, &hist);
        let fs = expected_false_merges(&sharp, &linear, 0.3, &hist);
        assert!(fs < fb);
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi < 1")]
    fn bad_levels_rejected() {
        let s = Scheme::pure(2, 2);
        let _ = fuzzy_zone(&s, &linear, 0.01, 0.99, 100);
    }
}
