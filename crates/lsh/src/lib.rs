//! # adalsh-lsh
//!
//! Locality-sensitive hashing primitives for adaLSH:
//!
//! * elementary hash families — [`hyperplane::HyperplaneFamily`] for the
//!   cosine/angular distance (paper Examples 2 and 6) and
//!   [`minhash::MinHashFamily`] for the Jaccard distance (Appendix C.1),
//!   plus the densified one-permutation variant
//!   [`doph::DensifiedMinHash`] computing all slots in one pass;
//! * AND/OR **amplification** of `(d₁, d₂, p₁, p₂)`-sensitive families
//!   (paper Appendix A, Definitions 4–6) in [`construction`];
//! * the **(w,z)-scheme** collision-probability model
//!   `1 − (1 − pʷ(x))ᶻ` in [`scheme`];
//! * the **scheme optimizer** solving Program (1)–(3) of §5.1 (and its
//!   non-integer-`budget/w` extension) in [`optimizer`];
//! * **multi-field** scheme optimizers for AND rules (Program (4)–(6)),
//!   OR rules (Program (7)–(10)), and the weighted-average function
//!   selection of Definition 7 with Theorems 3–4, in [`multifield`].
//!
//! Everything is deterministic given an explicit seed, so experiments are
//! reproducible bit-for-bit.

pub mod analysis;
pub mod construction;
pub mod doph;
pub mod euclidean;
pub mod hyperplane;
pub mod minhash;
pub mod mix;
pub mod multifield;
pub mod optimizer;
pub mod prob;
pub mod scheme;

pub use construction::Sensitivity;
pub use doph::{DensifiedMinHash, MinhashScheme};
pub use euclidean::EuclideanFamily;
pub use hyperplane::HyperplaneFamily;
pub use minhash::MinHashFamily;
pub use multifield::{AndScheme, FieldSpec, OrScheme, WeightedSelection};
pub use optimizer::{OptimizerInput, SchemeOptimizer};
pub use scheme::{Scheme, WzScheme};
