//! Scheme selection: Program (1)–(3) of paper §5.1 and its extensions.
//!
//! Given a hash-function budget, a distance threshold `dthr`, a recall
//! slack `ε`, and the elementary collision-probability function `p(x)`,
//! choose the `(w, z)` of a scheme so that
//!
//! * **objective (1)** — `∫₀¹ [1 − (1 − pʷ(x))ᶻ] dx` is minimized (few
//!   far-pair collisions);
//! * **constraint (2)** — `w · z = budget`;
//! * **constraint (3)** — `1 − (1 − pʷ(dthr))ᶻ ≥ 1 − ε` (near pairs
//!   almost surely collide).
//!
//! As the paper observes, the objective decreases with `w` while the
//! constraint eventually breaks, so for divisor-only `w` the optimum is
//! the **largest feasible divisor**, found by binary search
//! ([`SchemeOptimizer::optimize_divisor`]). The non-integer `budget/w`
//! extension enumerates all `w` and adds a remainder table
//! ([`SchemeOptimizer::optimize_exhausting`]); the `w·z ≤ X` variant used
//! by the LSH-X blocking baseline (§6.1.1) is
//! [`SchemeOptimizer::optimize_le`].

use crate::prob::{simpson, DEFAULT_INTERVALS};
use crate::scheme::{Scheme, WzScheme};

/// Inputs of the scheme-selection programs.
pub struct OptimizerInput<'a> {
    /// Total hash-function budget.
    pub budget: u64,
    /// Normalized distance threshold `dthr ∈ [0, 1]`.
    pub dthr: f64,
    /// Recall slack `ε` of constraint (3).
    pub epsilon: f64,
    /// Elementary collision probability `p(x)`, nonincreasing on `[0, 1]`.
    pub p: &'a dyn Fn(f64) -> f64,
    /// Lower bound on `w` (sequence monotonicity `wᵢ ≤ wᵢ₊₁`, §4.1).
    pub min_w: u32,
    /// Lower bound on `z` (sequence monotonicity `zᵢ ≤ zᵢ₊₁`, §4.1).
    pub min_z: u32,
}

impl<'a> OptimizerInput<'a> {
    /// Input with no monotonicity bounds.
    pub fn new(budget: u64, dthr: f64, epsilon: f64, p: &'a dyn Fn(f64) -> f64) -> Self {
        assert!(budget > 0, "budget must be positive");
        assert!((0.0..=1.0).contains(&dthr), "threshold outside [0,1]");
        assert!((0.0..1.0).contains(&epsilon), "epsilon outside [0,1)");
        Self {
            budget,
            dthr,
            epsilon,
            p,
            min_w: 1,
            min_z: 1,
        }
    }

    /// Sets the monotonicity lower bounds and returns `self`.
    pub fn with_min(mut self, min_w: u32, min_z: u32) -> Self {
        self.min_w = min_w.max(1);
        self.min_z = min_z.max(1);
        self
    }
}

/// Stateless namespace for the scheme-selection algorithms.
pub struct SchemeOptimizer;

impl SchemeOptimizer {
    /// The Program-(1) objective of a scheme: area under its
    /// collision-probability curve.
    pub fn objective(scheme: &Scheme, p: &dyn Fn(f64) -> f64) -> f64 {
        simpson(|x| scheme.collision_prob(p(x)), 0.0, 1.0, DEFAULT_INTERVALS)
    }

    /// Does constraint (3) hold for this scheme? Because `p` is
    /// nonincreasing and the curve is monotone in `p`, checking at `dthr`
    /// covers all `x ≤ dthr`.
    pub fn feasible(scheme: &Scheme, input: &OptimizerInput<'_>) -> bool {
        scheme.collision_prob((input.p)(input.dthr)) >= 1.0 - input.epsilon
    }

    /// Program (1)–(3) with `w` restricted to divisors of the budget:
    /// binary search for the **largest feasible divisor** `w` (the paper's
    /// §5.1 search). Honors `min_w`/`min_z`. Returns `None` when no
    /// divisor is feasible.
    pub fn optimize_divisor(input: &OptimizerInput<'_>) -> Option<WzScheme> {
        let divisors = divisors_of(input.budget);
        // Candidates satisfying the monotonicity bounds.
        let candidates: Vec<u32> = divisors
            .into_iter()
            .filter(|&w| {
                let z = (input.budget / u64::from(w)) as u32;
                w >= input.min_w && z >= input.min_z
            })
            .collect();
        if candidates.is_empty() {
            return None;
        }
        // Feasibility is monotone: true for small w, false past a cutoff.
        // Binary search the boundary.
        let feas = |w: u32| {
            let z = (input.budget / u64::from(w)) as u32;
            Self::feasible(&Scheme::pure(w, z), input)
        };
        if !feas(candidates[0]) {
            return None;
        }
        let (mut lo, mut hi) = (0usize, candidates.len() - 1);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if feas(candidates[mid]) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let w = candidates[lo];
        Some(WzScheme::new(w, (input.budget / u64::from(w)) as u32))
    }

    /// Non-integer-`budget/w` extension (§5.1): exhaustive search over all
    /// `w ∈ [min_w, budget]`, each with `z = ⌊budget/w⌋` full tables plus a
    /// remainder table, keeping the feasible scheme with minimum objective.
    pub fn optimize_exhausting(input: &OptimizerInput<'_>) -> Option<Scheme> {
        let mut best: Option<(f64, Scheme)> = None;
        for w in u64::from(input.min_w)..=input.budget {
            let scheme = Scheme::exhausting(input.budget, w as u32);
            if scheme.z < input.min_z {
                continue;
            }
            if !Self::feasible(&scheme, input) {
                // p is nonincreasing in w at every x, so once infeasible,
                // all larger w are infeasible too.
                break;
            }
            let obj = Self::objective(&scheme, input.p);
            if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                best = Some((obj, scheme));
            }
        }
        best.map(|(_, s)| s)
    }

    /// The LSH-X variant (§6.1.1): find the feasible `(w, z)` with
    /// `w · z ≤ budget` minimizing the objective. Dropping the remainder
    /// functions is allowed here — the baseline promises *at most* `X`
    /// functions per record.
    pub fn optimize_le(input: &OptimizerInput<'_>) -> Option<WzScheme> {
        let mut best: Option<(f64, WzScheme)> = None;
        for w in u64::from(input.min_w)..=input.budget {
            let z = (input.budget / w) as u32;
            if z == 0 || z < input.min_z {
                break;
            }
            let scheme = WzScheme::new(w as u32, z);
            if !Self::feasible(&scheme.into(), input) {
                break;
            }
            let obj = Self::objective(&scheme.into(), input.p);
            if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                best = Some((obj, scheme));
            }
        }
        best.map(|(_, s)| s)
    }
}

/// All divisors of `n`, ascending.
fn divisors_of(n: u64) -> Vec<u32> {
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            small.push(d as u32);
            if d * d != n {
                large.push((n / d) as u32);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_p(x: f64) -> f64 {
        1.0 - x
    }

    #[test]
    fn divisors_correct() {
        assert_eq!(divisors_of(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors_of(1), vec![1]);
        assert_eq!(divisors_of(49), vec![1, 7, 49]);
    }

    #[test]
    fn example5_feasibility() {
        // Paper Example 5's setting: budget 2100, dthr = 15/180, ε = 0.001.
        // NOTE: the example's prose labels the pairs inconsistently with
        // the paper's own formulas; evaluating 1 − (1 − pʷ(dthr))ᶻ gives:
        //   (15, 140): prob ≈ 1        → feasible, largest objective area
        //   (30, 70):  prob ≈ 0.995    → infeasible at ε = 0.001
        //   (60, 35):  prob ≈ 0.17     → infeasible, smallest objective
        // which matches the paper's *algorithmic* statements ("the greater
        // w, the lower the objective"; "once the constraint fails for some
        // w it fails for all greater w"). We test the consistent math.
        let input = OptimizerInput::new(2100, 15.0 / 180.0, 0.001, &linear_p);
        let s15 = Scheme::pure(15, 140);
        let s30 = Scheme::pure(30, 70);
        let s60 = Scheme::pure(60, 35);
        assert!(SchemeOptimizer::feasible(&s15, &input));
        assert!(!SchemeOptimizer::feasible(&s30, &input));
        assert!(!SchemeOptimizer::feasible(&s60, &input));
        let o15 = SchemeOptimizer::objective(&s15, &linear_p);
        let o30 = SchemeOptimizer::objective(&s30, &linear_p);
        let o60 = SchemeOptimizer::objective(&s60, &linear_p);
        assert!(o60 < o30, "greater w ⇒ lower objective");
        assert!(o30 < o15, "greater w ⇒ lower objective");
    }

    #[test]
    fn divisor_search_picks_largest_feasible() {
        let input = OptimizerInput::new(2100, 15.0 / 180.0, 0.001, &linear_p);
        let s = SchemeOptimizer::optimize_divisor(&input).expect("feasible");
        assert_eq!(s.budget(), 2100);
        // Must be feasible…
        assert!(SchemeOptimizer::feasible(&s.into(), &input));
        // …and the next larger divisor must not be.
        let divisors = super::divisors_of(2100);
        let pos = divisors.iter().position(|&w| w == s.w).unwrap();
        if pos + 1 < divisors.len() {
            let w2 = divisors[pos + 1];
            let s2 = Scheme::pure(w2, 2100 / w2);
            assert!(!SchemeOptimizer::feasible(&s2, &input));
        }
        // Binary search must agree with linear scan.
        let linear_best = divisors
            .iter()
            .filter(|&&w| SchemeOptimizer::feasible(&Scheme::pure(w, 2100 / w), &input))
            .max()
            .copied()
            .unwrap();
        assert_eq!(s.w, linear_best);
    }

    #[test]
    fn optimize_respects_min_bounds() {
        let input = OptimizerInput::new(2100, 15.0 / 180.0, 0.001, &linear_p).with_min(1, 100);
        let s = SchemeOptimizer::optimize_divisor(&input).expect("feasible");
        assert!(s.z >= 100);
    }

    #[test]
    fn infeasible_when_epsilon_too_strict() {
        // A budget of 2 functions cannot guarantee near-certain collision
        // at a distance of 0.5 with ε = 1e-9.
        let input = OptimizerInput::new(2, 0.5, 1e-9, &linear_p);
        assert!(SchemeOptimizer::optimize_divisor(&input).is_none());
        assert!(SchemeOptimizer::optimize_exhausting(&input).is_none());
    }

    #[test]
    fn trivially_feasible_with_loose_epsilon() {
        let input = OptimizerInput::new(16, 0.1, 0.9, &linear_p);
        let s = SchemeOptimizer::optimize_divisor(&input).expect("feasible");
        assert!(SchemeOptimizer::feasible(&s.into(), &input));
    }

    #[test]
    fn exhausting_at_least_as_good_as_divisor() {
        let input = OptimizerInput::new(2100, 15.0 / 180.0, 0.001, &linear_p);
        let div = SchemeOptimizer::optimize_divisor(&input).unwrap();
        let exh = SchemeOptimizer::optimize_exhausting(&input).unwrap();
        let o_div = SchemeOptimizer::objective(&div.into(), &linear_p);
        let o_exh = SchemeOptimizer::objective(&exh, &linear_p);
        assert!(o_exh <= o_div + 1e-12);
        assert_eq!(exh.budget(), 2100);
    }

    #[test]
    fn le_variant_uses_at_most_budget() {
        let input = OptimizerInput::new(1000, 0.2, 0.01, &linear_p);
        let s = SchemeOptimizer::optimize_le(&input).unwrap();
        assert!(s.budget() <= 1000);
        assert!(SchemeOptimizer::feasible(&s.into(), &input));
    }

    #[test]
    fn small_budget_20_is_solvable() {
        // adaLSH's first sequence function uses only 20 hash functions
        // (§6.1.1); the optimizer must produce something sensible.
        let input = OptimizerInput::new(20, 0.4, 0.05, &linear_p);
        let s = SchemeOptimizer::optimize_divisor(&input).expect("feasible");
        assert_eq!(s.budget(), 20);
    }

    #[test]
    fn feasibility_monotone_in_w() {
        // Empirically verify the monotonicity the binary search relies on.
        let input = OptimizerInput::new(720, 0.15, 0.01, &linear_p);
        let mut seen_infeasible = false;
        for w in 1..=720u64 {
            if 720 % w != 0 {
                continue;
            }
            let f = SchemeOptimizer::feasible(&Scheme::pure(w as u32, (720 / w) as u32), &input);
            if !f {
                seen_infeasible = true;
            }
            assert!(
                !(seen_infeasible && f),
                "feasibility must be monotone (violated at w={w})"
            );
        }
    }
}
