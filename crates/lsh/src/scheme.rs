//! `(w,z)`-schemes and their collision-probability curves.
//!
//! A `(w,z)`-scheme (paper §3, §5.1) uses `z` hash tables with `w` hash
//! functions concatenated per table. Two records at elementary collision
//! probability `p` hash to the same bucket in at least one table with
//! probability `1 − (1 − pʷ)ᶻ` — the curve plotted in the paper's
//! Figures 5 and 7.
//!
//! §5.1 also considers budgets where `budget / w` is not an integer: the
//! leftover `w' = budget − w·z` functions form one extra, shorter table,
//! and the probability becomes `1 − (1 − pʷ)ᶻ · (1 − pʷ′)`. [`Scheme`]
//! covers both cases (`w_rem = 0` recovers the pure `(w,z)`-scheme).

use serde::{Deserialize, Serialize};

/// A pure `(w,z)`-scheme: `z` tables × `w` functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WzScheme {
    /// Hash functions per table (AND width).
    pub w: u32,
    /// Number of tables (OR width).
    pub z: u32,
}

impl WzScheme {
    /// Creates a scheme.
    ///
    /// # Panics
    /// Panics if `w` or `z` is zero.
    pub fn new(w: u32, z: u32) -> Self {
        assert!(w > 0 && z > 0, "w and z must be positive");
        Self { w, z }
    }

    /// Total hash-function budget `w · z`.
    pub fn budget(&self) -> u64 {
        u64::from(self.w) * u64::from(self.z)
    }

    /// Probability of hashing to the same bucket in ≥ 1 table, given
    /// elementary collision probability `p`: `1 − (1 − pʷ)ᶻ`.
    pub fn collision_prob(&self, p: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&p));
        1.0 - (1.0 - p.powi(self.w as i32)).powi(self.z as i32)
    }
}

/// A scheme with an optional remainder table of `w_rem < w` functions,
/// covering non-divisor budgets (paper §5.1's extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scheme {
    /// Hash functions per full table.
    pub w: u32,
    /// Number of full tables.
    pub z: u32,
    /// Functions in the remainder table (`0` = no remainder table).
    pub w_rem: u32,
}

impl Scheme {
    /// A pure `(w,z)`-scheme.
    pub fn pure(w: u32, z: u32) -> Self {
        let s = WzScheme::new(w, z);
        Self {
            w: s.w,
            z: s.z,
            w_rem: 0,
        }
    }

    /// A scheme exhausting `budget` with tables of width `w`:
    /// `z = ⌊budget/w⌋` full tables plus a remainder table of
    /// `budget − w·z` functions.
    ///
    /// # Panics
    /// Panics if `w == 0` or `w > budget`.
    pub fn exhausting(budget: u64, w: u32) -> Self {
        assert!(w > 0, "w must be positive");
        assert!(u64::from(w) <= budget, "w exceeds budget");
        let z = (budget / u64::from(w)) as u32;
        let w_rem = (budget - u64::from(w) * u64::from(z)) as u32;
        Self { w, z, w_rem }
    }

    /// Total number of hash functions used.
    pub fn budget(&self) -> u64 {
        u64::from(self.w) * u64::from(self.z) + u64::from(self.w_rem)
    }

    /// Number of tables, including the remainder table if present.
    pub fn num_tables(&self) -> u32 {
        self.z + u32::from(self.w_rem > 0)
    }

    /// Width (function count) of table `t`.
    ///
    /// # Panics
    /// Panics if `t` is out of range.
    pub fn table_width(&self, t: u32) -> u32 {
        assert!(t < self.num_tables(), "table index out of range");
        if t < self.z {
            self.w
        } else {
            self.w_rem
        }
    }

    /// Collision probability `1 − (1 − pʷ)ᶻ · (1 − pʷ′)` (paper §5.1).
    pub fn collision_prob(&self, p: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&p));
        let full = (1.0 - p.powi(self.w as i32)).powi(self.z as i32);
        let rem = if self.w_rem > 0 {
            1.0 - p.powi(self.w_rem as i32)
        } else {
            1.0
        };
        1.0 - full * rem
    }
}

impl From<WzScheme> for Scheme {
    fn from(s: WzScheme) -> Self {
        Scheme::pure(s.w, s.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example3_curve_value() {
        // Paper Example 3: w=3, z=2, θ=55° ⇒ 1 − (1 − (1−55/180)³)².
        let s = WzScheme::new(3, 2);
        let p: f64 = 1.0 - 55.0 / 180.0;
        let expected = 1.0 - (1.0 - p.powi(3)).powi(2);
        assert!((s.collision_prob(p) - expected).abs() < 1e-15);
    }

    #[test]
    fn figure5_ordering_below_and_above_threshold() {
        // Figure 5: with more functions (w=30,z=70 vs w=15,z=20) the curve
        // is higher below ~55° and drops more sharply after.
        let small = WzScheme::new(15, 20);
        let large = WzScheme::new(30, 70);
        let p_at = |deg: f64| 1.0 - deg / 180.0;
        assert!(large.collision_prob(p_at(15.0)) > 0.99);
        assert!(small.collision_prob(p_at(15.0)) > 0.9);
        // Far pairs: the large-w scheme suppresses better at 80°.
        assert!(large.collision_prob(p_at(80.0)) < small.collision_prob(p_at(80.0)));
    }

    #[test]
    fn collision_prob_monotone_in_p() {
        let s = WzScheme::new(10, 40);
        let mut prev = 0.0;
        for i in 0..=100 {
            let p = i as f64 / 100.0;
            let c = s.collision_prob(p);
            assert!(c >= prev - 1e-12, "curve must be nondecreasing in p");
            prev = c;
        }
    }

    #[test]
    fn collision_prob_extremes() {
        let s = WzScheme::new(5, 7);
        assert_eq!(s.collision_prob(1.0), 1.0);
        assert_eq!(s.collision_prob(0.0), 0.0);
    }

    #[test]
    fn exhausting_splits_budget() {
        let s = Scheme::exhausting(100, 30);
        assert_eq!((s.w, s.z, s.w_rem), (30, 3, 10));
        assert_eq!(s.budget(), 100);
        assert_eq!(s.num_tables(), 4);
        assert_eq!(s.table_width(0), 30);
        assert_eq!(s.table_width(3), 10);
    }

    #[test]
    fn exhausting_exact_divisor_has_no_remainder() {
        let s = Scheme::exhausting(100, 25);
        assert_eq!((s.w, s.z, s.w_rem), (25, 4, 0));
        assert_eq!(s.num_tables(), 4);
    }

    #[test]
    fn fractional_probability_formula() {
        let s = Scheme::exhausting(7, 3); // z=2, w_rem=1
        let p: f64 = 0.8;
        let expected = 1.0 - (1.0 - p.powi(3)).powi(2) * (1.0 - p);
        assert!((s.collision_prob(p) - expected).abs() < 1e-15);
    }

    #[test]
    fn pure_scheme_equals_wz() {
        let a = Scheme::pure(4, 9);
        let b = WzScheme::new(4, 9);
        for i in 0..=10 {
            let p = i as f64 / 10.0;
            assert!((a.collision_prob(p) - b.collision_prob(p)).abs() < 1e-15);
        }
    }

    #[test]
    fn remainder_table_only_helps() {
        // Adding a remainder table can only increase collision probability.
        let pure = Scheme::pure(3, 2);
        let frac = Scheme::exhausting(7, 3);
        for i in 1..10 {
            let p = i as f64 / 10.0;
            assert!(frac.collision_prob(p) >= pure.collision_prob(p));
        }
    }
}
