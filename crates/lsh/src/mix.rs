//! Small deterministic 64-bit mixing utilities.
//!
//! Every randomized component in the workspace derives its per-function
//! randomness from `(seed, function-index)` pairs through these mixers, so
//! hash function `i` of a family is the same function regardless of the
//! order in which functions are first used — a prerequisite for the
//! *incremental computation* property (paper §2.2, Property 4).

/// SplitMix64 finalizer: a high-quality 64→64 bit mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Combines two 64-bit values into one, order-sensitively.
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    combine_premixed(a, premix(b))
}

/// The `b`-side preprocessing of [`combine`], exposed so batch kernels
/// evaluating `combine(kᵢ, b)` for many keys `kᵢ` can mix `b` once:
/// `combine(a, b) == combine_premixed(a, premix(b))`.
#[inline]
pub fn premix(b: u64) -> u64 {
    b.rotate_left(23).wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Finishes [`combine`] from a premixed `b` (see [`premix`]).
#[inline]
pub fn combine_premixed(a: u64, pre: u64) -> u64 {
    splitmix64(a ^ pre)
}

/// Derives the seed of sub-component `index` from a parent `seed`.
#[inline]
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ splitmix64(index.wrapping_add(0xa076_1d64_78bd_642f)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        assert_ne!(splitmix64(0), 0);
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }

    #[test]
    fn premix_factors_combine() {
        for (a, b) in [
            (0u64, 0u64),
            (1, 2),
            (u64::MAX, 42),
            (0xdead_beef, u64::MAX),
        ] {
            assert_eq!(combine(a, b), combine_premixed(a, premix(b)));
        }
    }

    #[test]
    fn derive_seed_distinguishes_indices() {
        let s = 0xdead_beef;
        assert_ne!(derive_seed(s, 0), derive_seed(s, 1));
        assert_ne!(derive_seed(s, 0), derive_seed(s + 1, 0));
    }

    #[test]
    fn splitmix_spreads_low_bits() {
        // Consecutive inputs should not produce consecutive outputs.
        let a = splitmix64(100);
        let b = splitmix64(101);
        assert!(a.abs_diff(b) > 1 << 32);
    }
}
