//! p-stable LSH family for the Euclidean (L2) distance.
//!
//! Datar–Immorlica–Indyk–Mirrokni hashing: project onto a random
//! Gaussian direction, shift by a random offset, and quantize with
//! bucket width `r`:
//!
//! ```text
//! h(v) = ⌊(⟨a, v⟩ + b) / r⌋,   a ~ N(0, I),   b ~ U[0, r)
//! ```
//!
//! For two vectors at L2 distance `c`, the collision probability is
//!
//! ```text
//! p(c) = 1 − 2Φ(−r/c) − (2c / (√(2π)·r)) · (1 − e^{−r²/(2c²)})
//! ```
//!
//! which is monotone decreasing in `c` — exactly the `p(x)` shape the
//! scheme optimizer (Program (1)–(3)) consumes, normalized by a caller-
//! chosen distance scale. The paper's own experiments use cosine/Jaccard
//! families; this family extends the library to metric spaces those
//! cannot serve (it is the family behind the entropy-based LSH the paper
//! cites as related work).

use rand::{Rng, SeedableRng};

use crate::mix::derive_seed;

/// A family of p-stable L2 hash functions over `R^dim`.
#[derive(Debug, Clone)]
pub struct EuclideanFamily {
    dim: usize,
    /// Quantization bucket width `r`.
    r: f64,
    seed: u64,
    /// Memoized `(direction, offset)` per function.
    functions: Vec<(Vec<f64>, f64)>,
}

impl EuclideanFamily {
    /// Creates a family with bucket width `r` over `dim`-dimensional
    /// vectors.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `r <= 0`.
    pub fn new(dim: usize, r: f64, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(r > 0.0, "bucket width must be positive");
        Self {
            dim,
            r,
            seed,
            functions: Vec::new(),
        }
    }

    /// The bucket width `r`.
    pub fn bucket_width(&self) -> f64 {
        self.r
    }

    /// Ensures functions `0..n` are materialized.
    pub fn ensure_functions(&mut self, n: usize) {
        while self.functions.len() < n {
            let idx = self.functions.len() as u64;
            let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(self.seed, idx));
            let direction: Vec<f64> = (0..self.dim).map(|_| gaussian(&mut rng)).collect();
            let offset: f64 = rng.random::<f64>() * self.r;
            self.functions.push((direction, offset));
        }
    }

    /// Evaluates hash function `fn_index` on `v` (a signed bucket index,
    /// bit-cast to `u64` for uniformity with the other families).
    ///
    /// # Panics
    /// Panics if the function is not materialized or dimensions differ.
    pub fn hash(&self, fn_index: usize, v: &[f64]) -> u64 {
        let (direction, offset) = &self.functions[fn_index];
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let dot: f64 = direction.iter().zip(v).map(|(a, x)| a * x).sum();
        (((dot + offset) / self.r).floor() as i64) as u64
    }

    /// Collision probability of one hash function for two vectors at L2
    /// distance `c` (the DIIM formula). `collision_prob(0) = 1`;
    /// monotone decreasing in `c`.
    pub fn collision_prob(&self, c: f64) -> f64 {
        collision_prob(c, self.r)
    }
}

/// The DIIM collision probability for bucket width `r` at distance `c`.
pub fn collision_prob(c: f64, r: f64) -> f64 {
    assert!(c >= 0.0 && r > 0.0);
    if c == 0.0 {
        return 1.0;
    }
    let t = r / c;
    let phi_term = 1.0 - 2.0 * std_normal_cdf(-t);
    let density_term = (2.0 / (std::f64::consts::TAU.sqrt() * t)) * (1.0 - (-t * t / 2.0).exp());
    (phi_term - density_term).clamp(0.0, 1.0)
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf polynomial
/// (|error| < 1.5e-7 — far below what scheme selection needs).
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 > f64::EPSILON {
            let u2: f64 = rng.random();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{OptimizerInput, SchemeOptimizer};

    #[test]
    fn erf_reference_values() {
        // erf(0) = 0, erf(1) ≈ 0.8427, erf(−1) = −erf(1), erf(2) ≈ 0.9953.
        // The A&S 7.1.26 polynomial is accurate to ~1.5e-7, so the
        // tolerances here reflect that (not machine precision).
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((std_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn collision_prob_boundary_and_monotone() {
        let r = 4.0;
        assert_eq!(collision_prob(0.0, r), 1.0);
        let mut prev = 1.0;
        for i in 1..=100 {
            let c = i as f64 * 0.2;
            let p = collision_prob(c, r);
            assert!((0.0..=1.0).contains(&p));
            assert!(p <= prev + 1e-12, "must be nonincreasing at c={c}");
            prev = p;
        }
    }

    #[test]
    fn wider_buckets_collide_more() {
        for &c in &[0.5f64, 1.0, 3.0] {
            assert!(collision_prob(c, 8.0) > collision_prob(c, 2.0));
        }
    }

    #[test]
    fn empirical_collision_rate_matches_formula() {
        let mut fam = EuclideanFamily::new(8, 4.0, 11);
        let n = 6000;
        fam.ensure_functions(n);
        let a: Vec<f64> = vec![0.0; 8];
        // b at L2 distance 2 from a.
        let mut b = a.clone();
        b[0] = 2.0;
        let collisions = (0..n)
            .filter(|&i| fam.hash(i, &a) == fam.hash(i, &b))
            .count();
        let rate = collisions as f64 / n as f64;
        let expected = collision_prob(2.0, 4.0);
        assert!(
            (rate - expected).abs() < 0.03,
            "rate {rate} vs formula {expected}"
        );
    }

    #[test]
    fn identical_vectors_always_collide() {
        let mut fam = EuclideanFamily::new(4, 1.0, 3);
        fam.ensure_functions(64);
        let v = [0.3, -0.7, 2.2, 0.0];
        for i in 0..64 {
            assert_eq!(fam.hash(i, &v), fam.hash(i, &v));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mk = || {
            let mut f = EuclideanFamily::new(4, 2.0, 9);
            f.ensure_functions(16);
            f
        };
        let (f1, f2) = (mk(), mk());
        let v = [1.0, -2.0, 0.5, 3.3];
        for i in 0..16 {
            assert_eq!(f1.hash(i, &v), f2.hash(i, &v));
        }
    }

    #[test]
    fn optimizer_accepts_euclidean_p() {
        // Program (1)–(3) with the DIIM p(x), distances normalized so the
        // unit interval spans L2 distances 0..10 with r = 4.
        let p = |x: f64| collision_prob(x * 10.0, 4.0);
        let input = OptimizerInput::new(240, 0.1, 0.01, &p);
        let s = SchemeOptimizer::optimize_divisor(&input).expect("feasible");
        assert!(SchemeOptimizer::feasible(&s.into(), &input));
        assert!(s.w >= 1 && s.budget() == 240);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_width_rejected() {
        let _ = EuclideanFamily::new(4, 0.0, 1);
    }
}
