//! MinHash family for the Jaccard distance.
//!
//! Hash function `i` applies a random permutation `πᵢ` to the shingle
//! universe and returns the minimum permuted value of the set. For two
//! sets `A`, `B`: `Pr[minᵢ(A) = minᵢ(B)] = |A∩B| / |A∪B|`, i.e.
//! `p(x) = 1 − x` for the Jaccard distance `x` — exactly the form the
//! scheme optimizer assumes (paper Appendix C.1 cites MinHash as the
//! family where Theorem 3 applies).
//!
//! Permutations are implemented as keyed 64-bit mixes — statistically
//! indistinguishable from random permutations of the 64-bit universe for
//! this purpose and far cheaper than explicit permutation tables.

use crate::mix::{combine, combine_premixed, derive_seed, premix};

/// A family of MinHash functions over shingle sets (`&[u64]`).
#[derive(Debug, Clone, Copy)]
pub struct MinHashFamily {
    seed: u64,
}

/// Hash value assigned to the empty set: all empty sets collide with each
/// other (Jaccard similarity of two empty sets is 1) and essentially never
/// with a non-empty set.
pub const EMPTY_SET_HASH: u64 = u64::MAX;

impl MinHashFamily {
    /// Creates a family with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The family seed — lets a sibling scheme over the same part (e.g.
    /// [`crate::doph::DensifiedMinHash`]) derive its randomness from the
    /// same root without the caller threading the seed separately.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Evaluates hash function `fn_index` on a shingle set.
    ///
    /// The set may be in any order; the result is order-independent.
    #[inline]
    pub fn hash(&self, fn_index: usize, set: &[u64]) -> u64 {
        if set.is_empty() {
            return EMPTY_SET_HASH;
        }
        let key = derive_seed(self.seed, fn_index as u64);
        set.iter()
            .map(|&s| combine(key, s))
            .min()
            .expect("non-empty set")
    }

    /// The per-function key mixed with every shingle by function
    /// `fn_index` — the value [`MinHashFamily::hash`] derives on every
    /// call. Callers evaluating the same function against many sets can
    /// derive it once and use [`MinHashFamily::hash_batch_keys`].
    #[inline]
    pub fn key_for(&self, fn_index: usize) -> u64 {
        derive_seed(self.seed, fn_index as u64)
    }

    /// Evaluates many hash functions on one set in a **single pass** over
    /// the shingles, maintaining one running minimum per function.
    /// `out[i]` receives the same value `hash(fn_indices[i], set)` would.
    ///
    /// # Panics
    /// Panics if `fn_indices` and `out` lengths differ.
    pub fn hash_batch(&self, fn_indices: &[usize], set: &[u64], out: &mut [u64]) {
        assert_eq!(fn_indices.len(), out.len(), "output length mismatch");
        let keys: Vec<u64> = fn_indices.iter().map(|&i| self.key_for(i)).collect();
        Self::hash_batch_keys(&keys, set, out);
    }

    /// Like [`MinHashFamily::hash_batch`] but with the per-function keys
    /// already derived (`keys[i] == key_for(fn_indices[i])`), so hot
    /// paths evaluating a fixed function block against many sets skip the
    /// key derivation entirely. Each shingle is premixed once (see
    /// [`premix`]) and combined with every key, streaming the minima.
    ///
    /// # Panics
    /// Panics if `keys` and `out` lengths differ.
    pub fn hash_batch_keys(keys: &[u64], set: &[u64], out: &mut [u64]) {
        assert_eq!(keys.len(), out.len(), "output length mismatch");
        if set.is_empty() {
            out.fill(EMPTY_SET_HASH);
            return;
        }
        out.fill(u64::MAX);
        for &s in set {
            let pre = premix(s);
            for (o, &key) in out.iter_mut().zip(keys) {
                let h = combine_premixed(key, pre);
                if h < *o {
                    *o = h;
                }
            }
        }
    }

    /// Collision probability `p(x) = 1 − x` at Jaccard distance `x`.
    pub fn collision_prob(x: f64) -> f64 {
        1.0 - x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let f = MinHashFamily::new(3);
        let s = [5u64, 9, 1];
        assert_eq!(f.hash(0, &s), f.hash(0, &s));
        assert_ne!(f.hash(0, &s), f.hash(1, &s));
    }

    #[test]
    fn order_independent() {
        let f = MinHashFamily::new(3);
        let a = [5u64, 9, 1];
        let b = [1u64, 5, 9];
        for i in 0..32 {
            assert_eq!(f.hash(i, &a), f.hash(i, &b));
        }
    }

    #[test]
    fn identical_sets_always_collide() {
        let f = MinHashFamily::new(8);
        let s: Vec<u64> = (0..50).map(|i| i * 31 + 7).collect();
        for i in 0..128 {
            assert_eq!(f.hash(i, &s), f.hash(i, &s.clone()));
        }
    }

    #[test]
    fn empty_sets_collide_with_each_other() {
        let f = MinHashFamily::new(8);
        assert_eq!(f.hash(0, &[]), EMPTY_SET_HASH);
        assert_eq!(f.hash(17, &[]), EMPTY_SET_HASH);
    }

    #[test]
    fn batch_matches_scalar() {
        let f = MinHashFamily::new(31);
        let set: Vec<u64> = (0..57).map(|i| i * 997 + 13).collect();
        // Non-contiguous, repeated, and large-stride function indices.
        let idx: Vec<usize> = vec![0, 5, 5, 1, 1 << 25, 123_456, 2, 999];
        let mut out = vec![0u64; idx.len()];
        f.hash_batch(&idx, &set, &mut out);
        for (&i, &o) in idx.iter().zip(&out) {
            assert_eq!(o, f.hash(i, &set));
        }
    }

    #[test]
    fn batch_keys_matches_scalar() {
        let f = MinHashFamily::new(7);
        let set: Vec<u64> = (0u64..33).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        let idx: Vec<usize> = (0..64).collect();
        let keys: Vec<u64> = idx.iter().map(|&i| f.key_for(i)).collect();
        let mut out = vec![0u64; idx.len()];
        MinHashFamily::hash_batch_keys(&keys, &set, &mut out);
        for (&i, &o) in idx.iter().zip(&out) {
            assert_eq!(o, f.hash(i, &set));
        }
    }

    #[test]
    fn batch_on_empty_set() {
        let f = MinHashFamily::new(2);
        let mut out = vec![0u64; 4];
        f.hash_batch(&[0, 1, 2, 3], &[], &mut out);
        assert!(out.iter().all(|&o| o == EMPTY_SET_HASH));
    }

    #[test]
    fn batch_on_singleton_set() {
        let f = MinHashFamily::new(2);
        let mut out = vec![0u64; 3];
        f.hash_batch(&[4, 9, 0], &[42], &mut out);
        for (&i, &o) in [4usize, 9, 0].iter().zip(&out) {
            assert_eq!(o, f.hash(i, &[42]));
        }
    }

    #[test]
    fn batch_keys_duplicate_keys_get_identical_minima() {
        // The same derived key appearing at several output positions must
        // produce the same minimum at each — the streaming loop keeps one
        // running minimum per *position*, not per distinct key.
        let f = MinHashFamily::new(12);
        let set: Vec<u64> = (0..29).map(|i| i * 31 + 7).collect();
        let k = f.key_for(5);
        let keys = [k, f.key_for(9), k, k];
        let mut out = [0u64; 4];
        MinHashFamily::hash_batch_keys(&keys, &set, &mut out);
        assert_eq!(out[0], out[2]);
        assert_eq!(out[0], out[3]);
        assert_eq!(out[0], f.hash(5, &set));
        assert_eq!(out[1], f.hash(9, &set));
    }

    #[test]
    fn batch_keys_empty_keys_is_a_no_op() {
        // Zero requested functions: nothing to write, for any set.
        let mut out: [u64; 0] = [];
        MinHashFamily::hash_batch_keys(&[], &[1, 2, 3], &mut out);
        MinHashFamily::hash_batch_keys(&[], &[], &mut out);
    }

    #[test]
    fn batch_keys_empty_set_fills_sentinel() {
        let f = MinHashFamily::new(3);
        let keys = [f.key_for(0), f.key_for(1)];
        let mut out = [7u64; 2];
        MinHashFamily::hash_batch_keys(&keys, &[], &mut out);
        assert_eq!(out, [EMPTY_SET_HASH; 2]);
    }

    #[test]
    fn batch_keys_duplicate_set_elements_do_not_change_minima() {
        // Min is idempotent: a multiset input must hash like its set.
        let f = MinHashFamily::new(21);
        let set: Vec<u64> = vec![3, 14, 15, 92, 65];
        let mut dup = set.clone();
        dup.extend_from_slice(&[14, 14, 92, 3]);
        let keys: Vec<u64> = (0..16).map(|i| f.key_for(i)).collect();
        let (mut a, mut b) = (vec![0u64; 16], vec![0u64; 16]);
        MinHashFamily::hash_batch_keys(&keys, &set, &mut a);
        MinHashFamily::hash_batch_keys(&keys, &dup, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "output length mismatch")]
    fn batch_keys_length_mismatch_panics() {
        let mut out = [0u64; 1];
        MinHashFamily::hash_batch_keys(&[1, 2], &[3], &mut out);
    }

    #[test]
    fn key_for_matches_hash_derivation() {
        // `hash` on a singleton {s} must equal combine(key_for(i), s).
        let f = MinHashFamily::new(77);
        for i in [0usize, 3, 1 << 20] {
            assert_eq!(f.hash(i, &[555]), crate::mix::combine(f.key_for(i), 555));
        }
    }

    #[test]
    fn empirical_collision_rate_matches_jaccard() {
        // A = {0..60}, B = {30..90}: |A∩B| = 30, |A∪B| = 90, sim = 1/3.
        let f = MinHashFamily::new(99);
        let a: Vec<u64> = (0..60).collect();
        let b: Vec<u64> = (30..90).collect();
        let n = 6000;
        let collisions = (0..n).filter(|&i| f.hash(i, &a) == f.hash(i, &b)).count();
        let rate = collisions as f64 / n as f64;
        assert!(
            (rate - 1.0 / 3.0).abs() < 0.025,
            "rate {rate} too far from 1/3"
        );
    }

    #[test]
    fn disjoint_sets_rarely_collide() {
        let f = MinHashFamily::new(4);
        let a: Vec<u64> = (0..40).collect();
        let b: Vec<u64> = (1000..1040).collect();
        let collisions = (0..2000)
            .filter(|&i| f.hash(i, &a) == f.hash(i, &b))
            .count();
        assert_eq!(collisions, 0, "disjoint 40-element sets should not collide");
    }

    #[test]
    fn subset_collision_rate() {
        // B ⊂ A with |B| = |A|/2: sim = 1/2.
        let f = MinHashFamily::new(21);
        let a: Vec<u64> = (0..80).collect();
        let b: Vec<u64> = (0..40).collect();
        let n = 6000;
        let collisions = (0..n).filter(|&i| f.hash(i, &a) == f.hash(i, &b)).count();
        let rate = collisions as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.03, "rate {rate} too far from 1/2");
    }
}
