//! MinHash family for the Jaccard distance.
//!
//! Hash function `i` applies a random permutation `πᵢ` to the shingle
//! universe and returns the minimum permuted value of the set. For two
//! sets `A`, `B`: `Pr[minᵢ(A) = minᵢ(B)] = |A∩B| / |A∪B|`, i.e.
//! `p(x) = 1 − x` for the Jaccard distance `x` — exactly the form the
//! scheme optimizer assumes (paper Appendix C.1 cites MinHash as the
//! family where Theorem 3 applies).
//!
//! Permutations are implemented as keyed 64-bit mixes — statistically
//! indistinguishable from random permutations of the 64-bit universe for
//! this purpose and far cheaper than explicit permutation tables.

use crate::mix::{combine, derive_seed};

/// A family of MinHash functions over shingle sets (`&[u64]`).
#[derive(Debug, Clone, Copy)]
pub struct MinHashFamily {
    seed: u64,
}

/// Hash value assigned to the empty set: all empty sets collide with each
/// other (Jaccard similarity of two empty sets is 1) and essentially never
/// with a non-empty set.
pub const EMPTY_SET_HASH: u64 = u64::MAX;

impl MinHashFamily {
    /// Creates a family with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Evaluates hash function `fn_index` on a shingle set.
    ///
    /// The set may be in any order; the result is order-independent.
    #[inline]
    pub fn hash(&self, fn_index: usize, set: &[u64]) -> u64 {
        if set.is_empty() {
            return EMPTY_SET_HASH;
        }
        let key = derive_seed(self.seed, fn_index as u64);
        set.iter()
            .map(|&s| combine(key, s))
            .min()
            .expect("non-empty set")
    }

    /// Collision probability `p(x) = 1 − x` at Jaccard distance `x`.
    pub fn collision_prob(x: f64) -> f64 {
        1.0 - x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let f = MinHashFamily::new(3);
        let s = [5u64, 9, 1];
        assert_eq!(f.hash(0, &s), f.hash(0, &s));
        assert_ne!(f.hash(0, &s), f.hash(1, &s));
    }

    #[test]
    fn order_independent() {
        let f = MinHashFamily::new(3);
        let a = [5u64, 9, 1];
        let b = [1u64, 5, 9];
        for i in 0..32 {
            assert_eq!(f.hash(i, &a), f.hash(i, &b));
        }
    }

    #[test]
    fn identical_sets_always_collide() {
        let f = MinHashFamily::new(8);
        let s: Vec<u64> = (0..50).map(|i| i * 31 + 7).collect();
        for i in 0..128 {
            assert_eq!(f.hash(i, &s), f.hash(i, &s.clone()));
        }
    }

    #[test]
    fn empty_sets_collide_with_each_other() {
        let f = MinHashFamily::new(8);
        assert_eq!(f.hash(0, &[]), EMPTY_SET_HASH);
        assert_eq!(f.hash(17, &[]), EMPTY_SET_HASH);
    }

    #[test]
    fn empirical_collision_rate_matches_jaccard() {
        // A = {0..60}, B = {30..90}: |A∩B| = 30, |A∪B| = 90, sim = 1/3.
        let f = MinHashFamily::new(99);
        let a: Vec<u64> = (0..60).collect();
        let b: Vec<u64> = (30..90).collect();
        let n = 6000;
        let collisions = (0..n).filter(|&i| f.hash(i, &a) == f.hash(i, &b)).count();
        let rate = collisions as f64 / n as f64;
        assert!(
            (rate - 1.0 / 3.0).abs() < 0.025,
            "rate {rate} too far from 1/3"
        );
    }

    #[test]
    fn disjoint_sets_rarely_collide() {
        let f = MinHashFamily::new(4);
        let a: Vec<u64> = (0..40).collect();
        let b: Vec<u64> = (1000..1040).collect();
        let collisions = (0..2000).filter(|&i| f.hash(i, &a) == f.hash(i, &b)).count();
        assert_eq!(collisions, 0, "disjoint 40-element sets should not collide");
    }

    #[test]
    fn subset_collision_rate() {
        // B ⊂ A with |B| = |A|/2: sim = 1/2.
        let f = MinHashFamily::new(21);
        let a: Vec<u64> = (0..80).collect();
        let b: Vec<u64> = (0..40).collect();
        let n = 6000;
        let collisions = (0..n).filter(|&i| f.hash(i, &a) == f.hash(i, &b)).count();
        let rate = collisions as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.03, "rate {rate} too far from 1/2");
    }
}
