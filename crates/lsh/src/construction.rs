//! AND/OR amplification of locality-sensitive families.
//!
//! Implements the sensitivity algebra of paper Appendix A: a family is
//! `(d₁, d₂, p₁, p₂)`-sensitive (Definition 4) when records within
//! distance `d₁` collide with probability ≥ `p₁` and records beyond `d₂`
//! collide with probability ≤ `p₂`. The AND-construction over `w`
//! functions yields `(d₁, d₂, p₁ʷ, p₂ʷ)` (Definition 5); the
//! OR-construction over `z` yields
//! `(d₁, d₂, 1−(1−p₁)ᶻ, 1−(1−p₂)ᶻ)` (Definition 6). A `(w,z)`-scheme is
//! the AND-OR composition.

use serde::{Deserialize, Serialize};

/// A `(d₁, d₂, p₁, p₂)` sensitivity claim (paper Definition 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sensitivity {
    /// "Near" distance: pairs within `d1` collide w.p. ≥ `p1`.
    pub d1: f64,
    /// "Far" distance: pairs beyond `d2` collide w.p. ≤ `p2`.
    pub d2: f64,
    /// Lower bound on near-pair collision probability.
    pub p1: f64,
    /// Upper bound on far-pair collision probability.
    pub p2: f64,
}

impl Sensitivity {
    /// Constructs a sensitivity, checking `d1 < d2` and `p1 > p2` — the
    /// "useful family" conditions noted after Definition 4.
    ///
    /// # Panics
    /// Panics if the conditions fail or values leave their ranges.
    pub fn new(d1: f64, d2: f64, p1: f64, p2: f64) -> Self {
        assert!(d1 < d2, "need d1 < d2 (got {d1} >= {d2})");
        assert!(p1 > p2, "need p1 > p2 (got {p1} <= {p2})");
        assert!((0.0..=1.0).contains(&p1) && (0.0..=1.0).contains(&p2));
        Self { d1, d2, p1, p2 }
    }

    /// The sensitivity of a family with `p(x) = 1 − x` (hyperplanes,
    /// MinHash) at the chosen near/far distances — paper Example 6
    /// (`(θ₁, θ₂, 1−θ₁/180, 1−θ₂/180)` in normalized form).
    pub fn linear(d1: f64, d2: f64) -> Self {
        Self::new(d1, d2, 1.0 - d1, 1.0 - d2)
    }

    /// AND-construction over `w` functions (Definition 5).
    pub fn and_construction(&self, w: u32) -> Self {
        Self {
            d1: self.d1,
            d2: self.d2,
            p1: self.p1.powi(w as i32),
            p2: self.p2.powi(w as i32),
        }
    }

    /// OR-construction over `z` functions (Definition 6).
    pub fn or_construction(&self, z: u32) -> Self {
        Self {
            d1: self.d1,
            d2: self.d2,
            p1: 1.0 - (1.0 - self.p1).powi(z as i32),
            p2: 1.0 - (1.0 - self.p2).powi(z as i32),
        }
    }

    /// AND-OR composition: `w` functions per table, `z` tables — the
    /// `(w,z)`-scheme amplification used throughout the paper.
    pub fn and_or(&self, w: u32, z: u32) -> Self {
        self.and_construction(w).or_construction(z)
    }

    /// The amplification *gap* `p1 − p2`; AND-OR should widen it.
    pub fn gap(&self) -> f64 {
        self.p1 - self.p2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_matches_example6() {
        // θ₁ = 30°, θ₂ = 60° normalized: (1/6, 1/3, 1−1/6, 1−1/3).
        let s = Sensitivity::linear(30.0 / 180.0, 60.0 / 180.0);
        assert!((s.p1 - (1.0 - 30.0 / 180.0)).abs() < 1e-15);
        assert!((s.p2 - (1.0 - 60.0 / 180.0)).abs() < 1e-15);
    }

    #[test]
    fn and_construction_powers() {
        let s = Sensitivity::new(0.1, 0.5, 0.9, 0.5);
        let a = s.and_construction(3);
        assert!((a.p1 - 0.9f64.powi(3)).abs() < 1e-15);
        assert!((a.p2 - 0.5f64.powi(3)).abs() < 1e-15);
    }

    #[test]
    fn or_construction_complements() {
        let s = Sensitivity::new(0.1, 0.5, 0.9, 0.5);
        let o = s.or_construction(2);
        assert!((o.p1 - (1.0 - 0.1f64 * 0.1)).abs() < 1e-12);
        assert!((o.p2 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn example3_probability() {
        // Paper Example 3: θ = x·180, w = 3, z = 2 ⇒
        // 1 − (1 − (1 − θ/180)³)².
        let theta: f64 = 40.0;
        let s = Sensitivity::linear(theta / 180.0, 0.9);
        let amp = s.and_or(3, 2);
        let p = 1.0 - theta / 180.0;
        let expected = 1.0 - (1.0 - p.powi(3)).powi(2);
        assert!((amp.p1 - expected).abs() < 1e-12);
    }

    #[test]
    fn and_or_widens_gap_for_good_params() {
        // w=5, z=20 on a (0.1, 0.6, 0.9, 0.4) family.
        let s = Sensitivity::new(0.1, 0.6, 0.9, 0.4);
        let amp = s.and_or(5, 20);
        assert!(amp.gap() > s.gap(), "amplification should widen the gap");
        assert!(amp.p1 > 0.99);
        assert!(amp.p2 < 0.2);
    }

    #[test]
    #[should_panic(expected = "p1 > p2")]
    fn useless_family_rejected() {
        let _ = Sensitivity::new(0.1, 0.5, 0.4, 0.4);
    }

    #[test]
    fn amplification_keeps_probabilities_in_range() {
        let s = Sensitivity::new(0.05, 0.5, 0.95, 0.5);
        for &(w, z) in &[(1u32, 1u32), (30, 70), (60, 35), (15, 140)] {
            let a = s.and_or(w, z);
            assert!((0.0..=1.0).contains(&a.p1));
            assert!((0.0..=1.0).contains(&a.p2));
            assert!(a.p1 >= a.p2);
        }
    }
}
