//! Densified one-permutation hashing (DOPH) for the Jaccard distance.
//!
//! Classic MinHash ([`crate::minhash::MinHashFamily`]) evaluates `K·L`
//! independent permutations, costing `O(|set| · K·L)` per record. One-
//! permutation hashing (Li, Owen & Zhang) instead applies a **single**
//! permutation and splits the hashed universe into `K·L` equal bins; the
//! minimum within each bin is that bin's hash value, so all `K·L` slots
//! cost one pass: `O(|set| + K·L)`. Bins that receive no element are
//! filled by **rotation densification** (Shrivastava & Li; used for
//! entity-resolution blocking by Steorts & Shrivastava, see PAPERS.md):
//! an empty bin borrows the value of the nearest occupied bin to its
//! right (circularly), re-keyed by the borrow distance so borrowing from
//! distance 1 and distance 2 never collide by construction.
//!
//! Collision statistics: for any two sets `A`, `B` and any slot `i`,
//! `Pr[slot_i(A) = slot_i(B)] ≈ |A∩B| / |A∪B|` — the same `p(x) = 1 − x`
//! curve as classic MinHash, so the `(w,z)`-scheme optimizer and the
//! [`crate::scheme`] collision model apply unchanged. The estimator is
//! only *asymptotically* equivalent: slots of one permutation are not
//! independent (notably when `|set| ≲ num_slots`, where densification
//! correlates borrowed slots), which is why the engine treats DOPH as a
//! separate, opt-in scheme rather than a drop-in replacement — see the
//! measured-rate pin tests below and `DESIGN.md`.
//!
//! The permutation is realized as a keyed 64-bit mix (exactly like
//! classic MinHash): `h = combine(key, shingle)` is the permuted value,
//! and the bin is the multiply-shift range reduction `(h · B) >> 64`,
//! which partitions the 64-bit universe into `B` equal contiguous
//! intervals without a modulo.

use serde::{Deserialize, Serialize};

use crate::minhash::EMPTY_SET_HASH;
use crate::mix::{combine, derive_seed};

/// Which MinHash evaluation scheme a Jaccard hash part uses.
///
/// `Classic` evaluates each of the `K·L` slot functions independently
/// (bit-compatible with every previously persisted hash state); `Doph`
/// computes all slots in one pass over the set. The two schemes produce
/// *different* hash values (and slightly different collision statistics),
/// so persisted states from one scheme must never be advanced under the
/// other — snapshots record the scheme for exactly this reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum MinhashScheme {
    /// One independent keyed permutation per slot (`O(|set| · K·L)`).
    #[default]
    Classic,
    /// Densified one-permutation hashing (`O(|set| + K·L)`).
    Doph,
}

impl std::fmt::Display for MinhashScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinhashScheme::Classic => write!(f, "classic"),
            MinhashScheme::Doph => write!(f, "doph"),
        }
    }
}

impl std::str::FromStr for MinhashScheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "classic" => Ok(MinhashScheme::Classic),
            "doph" => Ok(MinhashScheme::Doph),
            other => Err(format!(
                "unknown minhash scheme '{other}' (want classic or doph)"
            )),
        }
    }
}

/// A densified one-permutation MinHash over a fixed number of slots.
///
/// The slot count is fixed at construction because the bin an element
/// falls into depends on it: slot `i` of a `B`-slot family is a pure
/// function of `(seed, B, set)`, so every evaluation over the lifetime of
/// a family — whichever slot subrange a caller asks for — agrees with
/// every other.
#[derive(Debug, Clone)]
pub struct DensifiedMinHash {
    /// The single permutation key.
    key: u64,
    /// Total bin count `B`.
    num_slots: usize,
}

impl DensifiedMinHash {
    /// Creates a family with `num_slots` bins.
    ///
    /// # Panics
    /// Panics if `num_slots == 0`.
    pub fn new(seed: u64, num_slots: usize) -> Self {
        assert!(num_slots > 0, "need at least one slot");
        Self {
            // Decorrelate from classic MinHash function 0 of the same
            // part seed (which uses indices 0, 1, 2, …).
            key: derive_seed(seed, 0xD0_95),
            num_slots,
        }
    }

    /// Total number of slots `B`.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Computes every slot of `set` into `out` in one pass: bin each
    /// permuted element, keep per-bin minima, then densify empty bins by
    /// borrowing from the nearest occupied bin to the right (circularly),
    /// re-keyed by the borrow distance. The empty set fills every slot
    /// with [`EMPTY_SET_HASH`], matching classic MinHash semantics.
    ///
    /// The result is order-independent in `set` and identical across
    /// calls — including calls on clones of the family.
    ///
    /// # Panics
    /// Panics if `out.len() != num_slots`.
    pub fn hash_all(&self, set: &[u64], out: &mut [u64]) {
        assert_eq!(out.len(), self.num_slots, "output length mismatch");
        if set.is_empty() {
            out.fill(EMPTY_SET_HASH);
            return;
        }
        // `u64::MAX` doubles as the empty-bin sentinel: a real permuted
        // value of `u64::MAX` (probability 2⁻⁶⁴ per element) would merely
        // get densified over, costing an ulp of estimator accuracy.
        out.fill(u64::MAX);
        let b = self.num_slots as u128;
        for &s in set {
            let h = combine(self.key, s);
            let bin = ((u128::from(h) * b) >> 64) as usize;
            if h < out[bin] {
                out[bin] = h;
            }
        }
        self.densify(out);
    }

    /// Fills empty bins (sentinel `u64::MAX`) by rotation. One right-to-
    /// left pass: an empty bin at index `j` whose nearest occupied bin
    /// circularly to the right is `src` at distance `d` takes
    /// `combine(out[src], d)`. Scanning right-to-left means `out[src]`
    /// is always an *original* (pre-densification) value.
    fn densify(&self, out: &mut [u64]) {
        let n = out.len();
        let Some(first_filled) = out.iter().position(|&v| v != u64::MAX) else {
            // Every element permuted to u64::MAX (astronomically rare):
            // behave like the empty set rather than looping forever.
            out.fill(EMPTY_SET_HASH);
            return;
        };
        let mut nearest = usize::MAX;
        for j in (0..n).rev() {
            if out[j] != u64::MAX {
                nearest = j;
                continue;
            }
            let (src, d) = if nearest != usize::MAX {
                (nearest, nearest - j)
            } else {
                (first_filled, n - j + first_filled)
            };
            out[j] = combine(out[src], d as u64);
        }
    }

    /// Collision probability `p(x) = 1 − x` at Jaccard distance `x` —
    /// the same elementary curve as classic MinHash (asymptotically; see
    /// the module docs for the finite-set caveat).
    pub fn collision_prob(x: f64) -> f64 {
        1.0 - x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::WzScheme;

    fn slots(seed: u64, b: usize, set: &[u64]) -> Vec<u64> {
        let f = DensifiedMinHash::new(seed, b);
        let mut out = vec![0u64; b];
        f.hash_all(set, &mut out);
        out
    }

    #[test]
    fn deterministic_across_instances_and_clones() {
        let set: Vec<u64> = (0..37).map(|i| i * 131 + 5).collect();
        let f1 = DensifiedMinHash::new(9, 64);
        let f2 = f1.clone();
        let (mut a, mut b) = (vec![0u64; 64], vec![0u64; 64]);
        f1.hash_all(&set, &mut a);
        f2.hash_all(&set, &mut b);
        assert_eq!(a, b);
        assert_eq!(a, slots(9, 64, &set));
    }

    #[test]
    fn order_independent() {
        let a: Vec<u64> = vec![5, 9, 1, 77, 42];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(slots(3, 32, &a), slots(3, 32, &b));
    }

    #[test]
    fn empty_set_fills_empty_set_hash() {
        assert!(slots(3, 16, &[]).iter().all(|&v| v == EMPTY_SET_HASH));
    }

    #[test]
    fn singleton_set_is_fully_densified() {
        // One element fills one bin; every other bin borrows from it at a
        // distinct distance, so all slots are defined and deterministic.
        let out = slots(7, 24, &[42]);
        assert_eq!(out, slots(7, 24, &[42]));
        // Distinct borrow distances keep borrowed slots distinct from the
        // source (up to mixing collisions, none expected in 24 slots).
        let mut uniq = out.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > 20, "borrowed slots should rarely collide");
    }

    #[test]
    fn identical_sets_collide_on_every_slot() {
        let set: Vec<u64> = (0..50).map(|i| i * 31 + 7).collect();
        assert_eq!(slots(8, 128, &set), slots(8, 128, &set.clone()));
    }

    #[test]
    fn disjoint_sets_rarely_collide() {
        let a: Vec<u64> = (0..40).collect();
        let b: Vec<u64> = (1000..1040).collect();
        let (sa, sb) = (slots(4, 128, &a), slots(4, 128, &b));
        let collisions = sa.iter().zip(&sb).filter(|(x, y)| x == y).count();
        assert_eq!(collisions, 0, "disjoint 40-element sets should not collide");
    }

    #[test]
    fn different_seeds_give_different_slots() {
        let set: Vec<u64> = (0..30).collect();
        assert_ne!(slots(1, 64, &set), slots(2, 64, &set));
    }

    /// Per-slot collision rate over many independent seeds must track the
    /// Jaccard similarity — the elementary `p(x) = 1 − x` the scheme
    /// optimizer assumes. Sets much larger than the bin count keep
    /// densification (and its correlations) out of the picture.
    #[test]
    fn empirical_collision_rate_matches_jaccard() {
        // A = {0..600}, B = {200..800}: |A∩B| = 400, |A∪B| = 800, sim = 1/2.
        let a: Vec<u64> = (0..600).collect();
        let b: Vec<u64> = (200..800).collect();
        let (mut hits, mut total) = (0usize, 0usize);
        for seed in 0..200u64 {
            let (sa, sb) = (slots(seed, 32, &a), slots(seed, 32, &b));
            hits += sa.iter().zip(&sb).filter(|(x, y)| x == y).count();
            total += 32;
        }
        let rate = hits as f64 / total as f64;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate} too far from 1/2");
    }

    /// Densified (borrowed) slots must also collide at ≈ the Jaccard
    /// similarity: small sets against many bins force most slots through
    /// the densification path.
    #[test]
    fn densified_slots_track_jaccard() {
        // |A∩B| = 6, |A∪B| = 9, sim = 2/3; 64 bins >> 9 elements.
        let a: Vec<u64> = vec![1, 2, 3, 4, 5, 6, 100, 101];
        let b: Vec<u64> = vec![1, 2, 3, 4, 5, 6, 200];
        let (mut hits, mut total) = (0usize, 0usize);
        for seed in 0..400u64 {
            let (sa, sb) = (slots(seed, 64, &a), slots(seed, 64, &b));
            hits += sa.iter().zip(&sb).filter(|(x, y)| x == y).count();
            total += 64;
        }
        let rate = hits as f64 / total as f64;
        assert!(
            (rate - 2.0 / 3.0).abs() < 0.04,
            "rate {rate} too far from 2/3"
        );
    }

    /// Pins the `(w,z)` collision-probability model (`adalsh-lsh::scheme`,
    /// the curve `1 − (1 − pʷ)ᶻ` that the §5.1 optimizer and the
    /// `prob`-module integrals consume) against *measured* DOPH table
    /// collision rates: slice a `B = w·z` slot array into `z` tables of
    /// `w` concatenated slots, exactly as `SequenceHasher` does.
    #[test]
    fn wz_model_pins_measured_doph_rates() {
        // sim = 3/4 at |A∪B| = 240 (large vs B = 12: slot correlations
        // negligible, the independent-slot model applies).
        let a: Vec<u64> = (0..210).collect();
        let b: Vec<u64> = (30..240).collect();
        let sim = 180.0 / 240.0;
        for (w, z) in [(1u32, 12u32), (2, 6), (3, 4)] {
            let scheme = WzScheme::new(w, z);
            let b_slots = scheme.budget() as usize;
            let mut any_hits = 0usize;
            let trials = 3000u64;
            for seed in 0..trials {
                let (sa, sb) = (slots(seed, b_slots, &a), slots(seed, b_slots, &b));
                let any = (0..z as usize).any(|t| {
                    let r = t * w as usize..(t + 1) * w as usize;
                    sa[r.clone()] == sb[r]
                });
                any_hits += usize::from(any);
            }
            let measured = any_hits as f64 / trials as f64;
            let predicted = scheme.collision_prob(DensifiedMinHash::collision_prob(1.0 - sim));
            assert!(
                (measured - predicted).abs() < 0.03,
                "(w={w}, z={z}): measured {measured} vs model {predicted}"
            );
        }
    }

    #[test]
    fn subrange_reads_are_consistent() {
        // Reading any slot of the full array equals recomputing the full
        // array and indexing — the property the incremental hasher's
        // scalar oracle relies on.
        let set: Vec<u64> = (0..25).map(|i| i * 7 + 3).collect();
        let full = slots(11, 96, &set);
        for i in [0usize, 1, 47, 95] {
            assert_eq!(full[i], slots(11, 96, &set)[i]);
        }
    }

    #[test]
    fn scheme_parses_and_displays() {
        assert_eq!(
            "classic".parse::<MinhashScheme>(),
            Ok(MinhashScheme::Classic)
        );
        assert_eq!("doph".parse::<MinhashScheme>(), Ok(MinhashScheme::Doph));
        assert!("dophh".parse::<MinhashScheme>().is_err());
        assert_eq!(MinhashScheme::Doph.to_string(), "doph");
        assert_eq!(MinhashScheme::default(), MinhashScheme::Classic);
    }

    #[test]
    #[should_panic(expected = "output length mismatch")]
    fn wrong_output_length_panics() {
        let f = DensifiedMinHash::new(1, 8);
        let mut out = vec![0u64; 7];
        f.hash_all(&[1, 2], &mut out);
    }
}
