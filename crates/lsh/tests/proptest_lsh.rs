//! Property-based tests for the LSH layer: amplification algebra, scheme
//! curves, and optimizer guarantees over arbitrary parameters.

use adalsh_lsh::construction::Sensitivity;
use adalsh_lsh::optimizer::{OptimizerInput, SchemeOptimizer};
use adalsh_lsh::scheme::{Scheme, WzScheme};
use adalsh_lsh::{HyperplaneFamily, MinHashFamily};
use proptest::prelude::*;

fn linear_p(x: f64) -> f64 {
    1.0 - x
}

proptest! {
    #[test]
    fn scheme_prob_in_unit_interval(w in 1u32..64, z in 1u32..256, p in 0.0f64..=1.0) {
        let c = WzScheme::new(w, z).collision_prob(p);
        prop_assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn scheme_prob_monotone_in_p(w in 1u32..32, z in 1u32..128, p in 0.0f64..0.99) {
        let s = WzScheme::new(w, z);
        prop_assert!(s.collision_prob(p + 0.01) >= s.collision_prob(p) - 1e-12);
    }

    #[test]
    fn more_tables_never_hurt_recall(w in 1u32..32, z in 1u32..64, p in 0.0f64..=1.0) {
        let a = WzScheme::new(w, z).collision_prob(p);
        let b = WzScheme::new(w, z + 1).collision_prob(p);
        prop_assert!(b >= a - 1e-12);
    }

    #[test]
    fn wider_tables_never_help_recall(w in 1u32..32, z in 1u32..64, p in 0.0f64..=1.0) {
        let a = WzScheme::new(w, z).collision_prob(p);
        let b = WzScheme::new(w + 1, z).collision_prob(p);
        prop_assert!(b <= a + 1e-12);
    }

    #[test]
    fn exhausting_scheme_accounts_budget(budget in 1u64..5000, w in 1u32..128) {
        prop_assume!(u64::from(w) <= budget);
        let s = Scheme::exhausting(budget, w);
        prop_assert_eq!(s.budget(), budget);
        // Table widths partition the budget.
        let total: u64 = (0..s.num_tables()).map(|t| u64::from(s.table_width(t))).sum();
        prop_assert_eq!(total, budget);
    }

    #[test]
    fn amplification_preserves_ordering(
        d1 in 0.01f64..0.4,
        gap in 0.1f64..0.5,
        w in 1u32..20,
        z in 1u32..100,
    ) {
        let s = Sensitivity::linear(d1, (d1 + gap).min(0.99));
        let amp = s.and_or(w, z);
        prop_assert!(amp.p1 >= amp.p2 - 1e-12, "p1 {} p2 {}", amp.p1, amp.p2);
    }

    #[test]
    fn optimizer_output_is_feasible_and_exact_budget(
        budget in 16u64..4096,
        dthr in 0.05f64..0.6,
        eps_exp in 1u32..5,
    ) {
        let epsilon = 10f64.powi(-(eps_exp as i32));
        let input = OptimizerInput::new(budget, dthr, epsilon, &linear_p);
        if let Some(s) = SchemeOptimizer::optimize_divisor(&input) {
            prop_assert_eq!(s.budget(), budget);
            prop_assert!(SchemeOptimizer::feasible(&s.into(), &input));
            // Optimality: no larger feasible divisor exists.
            for w in (s.w + 1)..=(budget as u32) {
                if budget % u64::from(w) == 0 {
                    let cand = Scheme::pure(w, (budget / u64::from(w)) as u32);
                    prop_assert!(
                        !SchemeOptimizer::feasible(&cand, &input),
                        "w={w} also feasible but larger than {}",
                        s.w
                    );
                    break; // monotonicity makes one check sufficient
                }
            }
        } else {
            // If no divisor works, w = 1 must itself be infeasible.
            let base = Scheme::pure(1, budget as u32);
            prop_assert!(!SchemeOptimizer::feasible(&base, &input));
        }
    }

    #[test]
    fn exhausting_never_worse_than_divisor(
        budget in 16u64..1024,
        dthr in 0.05f64..0.5,
    ) {
        let input = OptimizerInput::new(budget, dthr, 1e-3, &linear_p);
        let div = SchemeOptimizer::optimize_divisor(&input);
        let exh = SchemeOptimizer::optimize_exhausting(&input);
        if let (Some(d), Some(e)) = (div, exh) {
            let od = SchemeOptimizer::objective(&d.into(), &linear_p);
            let oe = SchemeOptimizer::objective(&e, &linear_p);
            prop_assert!(oe <= od + 1e-9, "exhausting {oe} vs divisor {od}");
        }
    }

    #[test]
    fn minhash_deterministic_and_order_free(
        mut set in prop::collection::vec(0u64..10_000, 1..80),
        idx in 0usize..256,
        seed in 0u64..1000,
    ) {
        let f = MinHashFamily::new(seed);
        let a = f.hash(idx, &set);
        set.reverse();
        prop_assert_eq!(f.hash(idx, &set), a);
    }

    #[test]
    fn minhash_of_superset_never_larger(
        set in prop::collection::vec(0u64..10_000, 1..40),
        extra in prop::collection::vec(0u64..10_000, 1..40),
        idx in 0usize..64,
    ) {
        // min over a superset can only be ≤ the subset's min.
        let f = MinHashFamily::new(7);
        let small = f.hash(idx, &set);
        let mut big = set.clone();
        big.extend(extra);
        prop_assert!(f.hash(idx, &big) <= small);
    }

    #[test]
    fn hyperplane_sign_flips_with_negation(
        v in prop::collection::vec(-10.0f64..10.0, 4..16),
        idx in 0usize..64,
    ) {
        prop_assume!(v.iter().any(|&x| x.abs() > 1e-6));
        let mut fam = HyperplaneFamily::new(v.len(), 3);
        fam.ensure_functions(idx + 1);
        let pos = fam.hash(idx, &v);
        let neg_v: Vec<f64> = v.iter().map(|x| -x).collect();
        let neg = fam.hash(idx, &neg_v);
        // Signs differ unless the dot product is exactly zero (measure
        // zero; the boundary convention maps 0 to the positive side, so
        // a zero dot makes both sides return 1).
        prop_assert!(pos != neg || pos == 1);
    }
}
