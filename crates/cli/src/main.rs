//! `adalsh` — command-line top-k entity resolution.
//!
//! ```text
//! adalsh generate <cora|spotsigs|popimages> --out data.jsonl [--records N] [--seed S]
//! adalsh datagen --out data.store [--records N] [--seed S]
//! adalsh info <data.jsonl>
//! adalsh filter <data.jsonl | --store data.store> --k K [--method adalsh|pairs|lshX] [--rule …] [--out clusters.json]
//! adalsh evaluate <data.jsonl | --store data.store> --k K [--method …] [--khat K2] [--rule …]
//! adalsh serve <bootstrap.jsonl> [--addr 127.0.0.1:8080] [--rule …] [--snapshot-out s.json]
//! adalsh serve --resume s.json [--addr …]
//! adalsh trace <validate|summarize> <trace.jsonl>
//! ```
//!
//! Rule selection (`--rule`): `jaccard:<dthr>` or `angular:<degrees>`
//! applied to field 0, or the preset `cora` (the three-field AND rule).
//! Default: inferred from the first field's kind (`jaccard:0.6` /
//! `angular:3`).

mod args;
mod bench_diff;
mod commands;
mod rules;

use args::Args;

const USAGE: &str = "\
adalsh — top-k entity resolution with adaptive LSH

USAGE:
  adalsh generate <cora|spotsigs|popimages> --out <file> [--records N] [--entities N] [--seed S] [--exponent E]
  adalsh datagen --out <file.store> [--records N] [--seed S] [--exponent E] [--max-entity-size N]
  adalsh info <data.jsonl>
  adalsh filter <data.jsonl | --store <file.store>> --k <K> [--method adalsh|pairs|lsh<X>] [--rule <spec>]
                [--threads <N>] [--out <file>]
                [--minhash-scheme classic|doph] [--trace-out <file.jsonl>] [--oracle exact|noisy …]
  adalsh evaluate <data.jsonl | --store <file.store>> --k <K> [--khat <K2>] [--method <m>] [--rule <spec>]
                [--threads <N>]
                [--minhash-scheme classic|doph] [--trace-out <file.jsonl>] [--oracle exact|noisy …]
  adalsh serve <bootstrap.jsonl> [--addr <host:port>] [--rule <spec>] [--snapshot-out <file>]
               [--workers <N>] [--threads <N>] [--queue-cap <N>] [--max-batch <N>] [--resolve-k <K>]
               [--slow-ms <T>] [--minhash-scheme classic|doph] [--trace-out <file.jsonl>]
               [--oracle exact|noisy …]
  adalsh serve --resume <snapshot.json> [--addr <host:port>] [--workers <N>] [--threads <N>]
               [--queue-cap <N>] [--max-batch <N>] [--resolve-k <K>] [--slow-ms <T>]
  adalsh trace <validate|summarize|attribute> <trace.jsonl>
  adalsh bench diff <current.json> <baseline.json> [--smoke]

OUT-OF-CORE STORE:
  adalsh datagen streams the seeded million-record scale generator
  (Zipf-sized entities, constant memory) straight into a columnar
  .store file. filter/evaluate accept --store <file.store> in place of
  the dataset file and resolve directly off the memory mapping — no
  record is materialized in RAM, and output is bit-identical to the
  in-RAM path. Scale-tier stores match the rule preset jaccard:0.4
  (distance threshold; entities are planted at similarity well above 0.6).

SERVE:
  Boots the online top-k resolution HTTP service (POST /ingest,
  GET /topk?k=N, GET /healthz, GET /metrics, POST /snapshot). A fresh
  start designs the engine from the bootstrap dataset; --resume restores
  a POST /snapshot file without re-hashing any record. --addr with port
  0 picks an ephemeral port (printed on stdout once bound).

  Ingest is pipelined: batches land in a bounded queue (--queue-cap,
  default 64 batches; 503 + Retry-After when full), a resolver thread
  drains up to --max-batch records per pass (default 2048), resolves top
  --resolve-k clusters (default 10), and publishes an immutable epoch
  snapshot. GET /topk?k=N serves N <= resolve-k lock-free; add
  &wait_epoch=<visible_epoch from /ingest> for read-your-writes.

TRACING:
  --trace-out <file>  write one JSON object per engine event (hash
                      rounds, gate decisions, pairwise blocks, finals)
                      to <file>; adaLSH method only. filter/evaluate
                      runs additionally emit a filter_run span tree
                      (design + resolve phases, engine-derived
                      hash_rounds/pairwise children, RSS/page-fault
                      deltas) into the same file. Inspect with
                      `adalsh trace summarize <file>` (per-level table),
                      `adalsh trace validate <file>` (checks every
                      event against the taxonomy, reconciles trace
                      sums against the run's Stats totals, and checks
                      the span-tree invariants), or
                      `adalsh trace attribute <file>` (per-phase
                      latency attribution from the span trees). The
                      serve command additionally folds these events
                      into adalsh_engine_* histograms on GET /metrics.

SPANS (serve):
  Every ingest batch gets a root ingest_batch span decomposed into
  queue_wait / coalesce / resolve (with hash_rounds + pairwise engine
  children) / publish; every /topk query gets a topk_query span. The
  live ring is served on GET /debug/spans, span-backed families
  (adalsh_ingest_to_visible_seconds, adalsh_queue_age_seconds, resolve
  page-fault counters) land on GET /metrics, and --slow-ms <T> logs
  root spans at or above T milliseconds to stderr.

BENCH GATE:
  adalsh bench diff compares a fresh recorder JSON against a committed
  BENCH_*.json baseline: numeric metrics are classified by key name
  (latency-like: lower is better; qps/recall-like: higher is better),
  warn past 1.3x, and fail the gate past 1.3x (or 3x with --smoke,
  which tolerates warn-level noise on shared machines).

ORACLE (adaLSH method; also serve):
  --oracle exact|noisy
                     exact (default): pairwise verdicts come straight
                     from the match rule — byte-for-byte today's path.
                     noisy: a seeded fault-injected oracle wraps the
                     rule with an error model, retries with backoff,
                     majority voting, and a spend budget. Deterministic:
                     the same --oracle-seed gives bit-identical verdicts
                     at any thread count. Exhausted budgets or retry
                     deadlines degrade gracefully to the rule verdict
                     (counted as degraded, never an abort).
  --oracle-fp <r>    false-match rate in [0, 1] (default 0)
  --oracle-fn <r>    false-non-match rate in [0, 1] (default 0)
  --oracle-fault <r> per-attempt timeout/transient-error rate (default 0)
  --oracle-seed <S>  noise/fault RNG seed (default 42)
  --oracle-budget <N> total adjudication spend before degradation
                     (default unlimited)
  --oracle-votes <N> majority-vote panel size for low-confidence
                     verdicts, rounded up to odd (default 3)
  --oracle-timeout-ms <T> per-attempt modeled timeout (default 50)
  Noisy runs print an oracle ledger line (calls, retries, timeouts,
  degraded, spend) and stamp the same totals on run_end trace events,
  where `adalsh trace validate` reconciles them against the per-call
  oracle_call events. Under serve, POST /adjudicate accepts external
  verdicts that override the oracle pair-by-pair.

RULE SPECS:
  jaccard:<dthr>     Jaccard distance threshold on field 0 (e.g. jaccard:0.6)
  angular:<degrees>  angular threshold in degrees on field 0 (e.g. angular:3)
  cora               the three-field publication AND rule

THREADS:
  --threads <N>      worker threads for adaLSH transitive hashing
                     (default: auto = available parallelism; --threads 1
                     runs the sequential reference path; output and
                     statistics are identical at any thread count)

MINHASH SCHEME (adaLSH method, Jaccard fields):
  --minhash-scheme classic|doph
                     classic (default): one keyed permutation per hash
                     slot — bit-compatible with existing snapshots.
                     doph: densified one-permutation hashing — all K*L
                     slots in one pass per record (O(|set| + K*L) instead
                     of O(|set| * K*L)); hash values and collision
                     statistics differ slightly from classic, so serve
                     snapshots record the scheme and refuse a mismatched
                     resume.
";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        print!("{USAGE}");
        return;
    }
    let args = match Args::parse(raw, &["verbose", "smoke"]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match args.command.as_str() {
        "generate" => commands::generate(&args),
        "datagen" => commands::datagen(&args),
        "info" => commands::info(&args),
        "filter" => commands::filter(&args),
        "evaluate" => commands::evaluate(&args),
        "serve" => commands::serve(&args),
        "trace" => commands::trace(&args),
        "bench" => commands::bench(&args),
        other => Err(format!("unknown command '{other}'")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
