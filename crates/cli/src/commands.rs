//! The CLI subcommands.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use adalsh_core::algorithm::{AdaLsh, AdaLshConfig, FilterMethod, FilterOutput};
use adalsh_core::baselines::{LshBlocking, Pairs};
use adalsh_core::metrics::{map_mar, reduction_pct, set_metrics};
use adalsh_core::recovery::perfect_recovery;
use adalsh_core::{MinhashScheme, NoisyOracleConfig, OnlineAdaLsh, OracleMode, OracleSpend};
use adalsh_data::{io as dio, Dataset, RecordStore};
use adalsh_datagen::popimages::PopImagesConfig;
use adalsh_datagen::spotsigs::SpotSigsConfig;
use adalsh_datagen::{CoraConfig, ScaleConfig, ScaleGenerator};
use adalsh_obs::span::DEFAULT_RING_CAP;
use adalsh_obs::{
    attr, jsonl, schema, summary, JsonlSubscriber, ProcSample, SpanCollector, Spans, TraceSink,
    Value as TraceValue,
};
use adalsh_serve::{PipelineConfig, ServeSnapshot, Server, ServerConfig, Service};
use adalsh_store::{StoreBuilder, StoreView};

use crate::args::Args;
use crate::bench_diff;
use crate::rules;

/// `adalsh generate <family> --out file …`
pub fn generate(args: &Args) -> Result<(), String> {
    let family = args.positional(0, "dataset family")?;
    let out = args.flag("out").ok_or("generate requires --out <file>")?;
    let seed: u64 = args.flag_or("seed", 42u64)?;
    let dataset = match family {
        "cora" => {
            let cfg = CoraConfig {
                num_records: args.flag_or("records", 1200usize)?,
                num_entities: args.flag_or("entities", 220usize)?,
                seed,
                ..CoraConfig::default()
            };
            adalsh_datagen::cora::generate(&cfg).0
        }
        "spotsigs" => {
            let cfg = SpotSigsConfig {
                num_records: args.flag_or("records", 1100usize)?,
                num_entities: args.flag_or("entities", 120usize)?,
                seed,
                ..SpotSigsConfig::default()
            };
            adalsh_datagen::spotsigs::generate(&cfg)
        }
        "popimages" => {
            let cfg = PopImagesConfig {
                num_records: args.flag_or("records", 4000usize)?,
                num_entities: args.flag_or("entities", 250usize)?,
                zipf_exponent: args.flag_or("exponent", 1.05f64)?,
                seed,
                ..PopImagesConfig::default()
            };
            adalsh_datagen::popimages::generate(&cfg)
        }
        other => return Err(format!("unknown family '{other}'")),
    };
    dio::save(&dataset, Path::new(out)).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {} records / {} entities to {out}",
        dataset.len(),
        dataset.num_entities()
    );
    Ok(())
}

/// `adalsh info <file>`
pub fn info(args: &Args) -> Result<(), String> {
    let dataset = load(args)?;
    let sizes = dataset.entity_sizes();
    println!("records:  {}", dataset.len());
    println!("entities: {}", dataset.num_entities());
    println!("fields:");
    for f in dataset.schema().fields() {
        println!("  {} ({:?})", f.name, f.kind);
    }
    let shown = if args.switch("verbose") {
        sizes.len()
    } else {
        sizes.len().min(10)
    };
    println!("top entity sizes: {:?}", &sizes[..shown]);
    println!("singletons: {}", sizes.iter().filter(|&&s| s == 1).count());
    Ok(())
}

/// `adalsh filter <file> --k K [--method m] [--rule spec] [--out file]`
/// or `adalsh filter --store <file.store> …` to resolve directly off a
/// memory-mapped store file without materializing records in RAM.
pub fn filter(args: &Args) -> Result<(), String> {
    let input = load_input(args)?;
    let store = input.store();
    let k: usize = args.flag_or("k", 10usize)?;
    let rule = rules::resolve(args.flag("rule"), store.schema())?;
    let (name, out) = run_method(args, store, &rule, k)?;
    println!(
        "{name}: {} clusters, {} records, {:?} ({} hash evals, {} pair comparisons)",
        out.clusters.len(),
        out.records().len(),
        out.wall,
        out.stats.hash_evals,
        out.stats.pair_comparisons
    );
    if let Some(spend) = &out.oracle {
        println!("{}", oracle_summary(spend));
    }
    for (i, c) in out.clusters.iter().enumerate() {
        let preview: Vec<u32> = c.iter().take(8).copied().collect();
        println!("#{:<3} size {:<6} e.g. {:?}", i + 1, c.len(), preview);
    }
    if let Some(path) = args.flag("out") {
        let json = serde_json::to_string_pretty(&out.clusters).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        println!("clusters written to {path}");
    }
    Ok(())
}

/// `adalsh evaluate <file> --k K [--khat K2] [--method m] [--rule spec]`
/// — also accepts `--store <file.store>` in place of the dataset file.
pub fn evaluate(args: &Args) -> Result<(), String> {
    let input = load_input(args)?;
    let store = input.store();
    let k: usize = args.flag_or("k", 10usize)?;
    let khat: usize = args.flag_or("khat", k)?;
    let rule = rules::resolve(args.flag("rule"), store.schema())?;
    let (name, out) = run_method(args, store, &rule, khat)?;
    let gold = store.gold_records(k);
    let m = set_metrics(&out.records(), &gold);
    let gt = store.ground_truth_clusters();
    let (map, mar) = map_mar(&out.clusters, &gt, k);
    let recovered = perfect_recovery(store, &out.records());
    let (map_r, mar_r) = map_mar(&recovered, &gt, k);
    println!("method:            {name}");
    println!("requested k̂:       {khat} (gold k = {k})");
    println!("filtering time:    {:?}", out.wall);
    println!("hash evaluations:  {}", out.stats.hash_evals);
    println!("pair comparisons:  {}", out.stats.pair_comparisons);
    println!(
        "output records:    {} ({:.1}% of dataset)",
        out.records().len(),
        reduction_pct(out.records().len(), store.len())
    );
    println!("precision gold:    {:.4}", m.precision);
    println!("recall gold:       {:.4}", m.recall);
    println!("F1 gold:           {:.4}", m.f1);
    println!("mAP / mAR:         {map:.4} / {mar:.4}");
    println!("with recovery:     {map_r:.4} / {mar_r:.4}");
    if let Some(spend) = &out.oracle {
        println!("{}", oracle_summary(spend));
    }
    Ok(())
}

/// `adalsh serve <bootstrap.jsonl> [--addr A] [--rule spec] …` or
/// `adalsh serve --resume <snapshot.json> [--addr A] …`
///
/// Boots the online resolution service. A fresh start bootstraps the
/// engine design from the dataset file; `--resume` restores records and
/// hash states from a `POST /snapshot` file instead (the match rule is
/// taken from the snapshot, so already-hashed records are never
/// re-hashed). `--queue-cap`, `--max-batch`, and `--resolve-k` tune the
/// ingest pipeline (queue bound, records per resolve pass, published
/// resolve depth). Prints `listening on http://<addr>` once ready —
/// with `--addr 127.0.0.1:0` the line reveals the ephemeral port.
pub fn serve(args: &Args) -> Result<(), String> {
    let addr = args.flag("addr").unwrap_or("127.0.0.1:8080");
    let workers: usize = args.flag_or("workers", 4usize)?;
    let threads: usize = args.flag_or("threads", 0usize)?;
    let snapshot_out = args.flag("snapshot-out").map(PathBuf::from);
    let pipeline_defaults = PipelineConfig::default();
    let pipeline = PipelineConfig {
        queue_cap: args.flag_or("queue-cap", pipeline_defaults.queue_cap)?,
        max_batch: args.flag_or("max-batch", pipeline_defaults.max_batch)?,
        resolve_k: args.flag_or("resolve-k", pipeline_defaults.resolve_k)?,
        slow_ms: args.flag_or("slow-ms", pipeline_defaults.slow_ms)?,
        ..pipeline_defaults
    };
    let trace = match args.flag("trace-out") {
        Some(path) => {
            println!("tracing engine rounds to {path}");
            trace_sink(path)?
        }
        None => TraceSink::disabled(),
    };

    let (resolver, rule) = if let Some(path) = args.flag("resume") {
        let snapshot = ServeSnapshot::load(Path::new(path))?;
        // The snapshot's hash states were computed under its recorded
        // scheme; an explicitly conflicting flag is an error rather
        // than a silent engine rebuild.
        if let Some(flag) = args.flag("minhash-scheme") {
            let asked: MinhashScheme = flag.parse()?;
            if asked != snapshot.scheme {
                return Err(format!(
                    "snapshot was taken with --minhash-scheme {} but {asked} was requested; \
                     resuming would invalidate every persisted hash state",
                    snapshot.scheme
                ));
            }
        }
        let rule = snapshot.rule.clone();
        let mut config = AdaLshConfig::new(rule.clone());
        if threads > 0 {
            config.threads = threads;
        }
        config.oracle = oracle_mode(args)?;
        config.trace = trace;
        let resolver = snapshot.restore(config)?;
        println!("resumed {} records from {path}", resolver.len());
        (resolver, rule)
    } else {
        let dataset = load(args)?;
        let rule = rules::resolve(args.flag("rule"), dataset.schema())?;
        let mut config = AdaLshConfig::new(rule.clone());
        if threads > 0 {
            config.threads = threads;
        }
        config.minhash_scheme = args.flag_or("minhash-scheme", MinhashScheme::Classic)?;
        config.oracle = oracle_mode(args)?;
        config.trace = trace;
        let resolver = OnlineAdaLsh::new(&dataset, config)?;
        println!("bootstrapped engine from {} records", resolver.len());
        (resolver, rule)
    };

    let service = Arc::new(Service::with_config(resolver, rule, snapshot_out, pipeline));
    let config = ServerConfig {
        workers,
        ..ServerConfig::default()
    };
    let server = Server::start(service, addr, config).map_err(|e| format!("bind {addr}: {e}"))?;
    println!("listening on http://{}", server.local_addr());
    // Serve until the process is terminated (`park` tolerates spurious
    // wake-ups; there is nothing else for the main thread to do).
    loop {
        std::thread::park();
    }
}

fn load(args: &Args) -> Result<Dataset, String> {
    let path = args.positional(0, "dataset path")?;
    dio::load(Path::new(path)).map_err(|e| format!("read {path}: {e}"))
}

/// Record source for `filter`/`evaluate`: a dataset file materialized
/// in RAM, or a store file resolved through its memory mapping.
enum Input {
    Ram(Dataset),
    Mapped(StoreView),
}

impl Input {
    fn store(&self) -> &dyn RecordStore {
        match self {
            Input::Ram(dataset) => dataset,
            Input::Mapped(view) => view,
        }
    }
}

/// Loads the positional dataset file, or opens `--store <file.store>`
/// as a zero-copy mapped view. Exactly one of the two must be given.
fn load_input(args: &Args) -> Result<Input, String> {
    match args.flag("store") {
        Some(path) => {
            if !args.positional.is_empty() {
                return Err(
                    "pass either a dataset file or --store <file.store>, not both".to_string(),
                );
            }
            StoreView::open(Path::new(path))
                .map(Input::Mapped)
                .map_err(|e| format!("open store {path}: {e}"))
        }
        None => load(args).map(Input::Ram),
    }
}

/// `adalsh datagen --out <file.store> [--records N] [--seed S]
/// [--exponent E] [--max-entity-size N]`
///
/// Streams the seeded Zipf scale generator straight into a store file:
/// records are written as they are drawn, so memory stays constant no
/// matter how many records are requested. The result is consumed with
/// `filter --store` / `evaluate --store` and the rule preset
/// `jaccard:0.4` (a distance threshold; planted entities sit well inside it).
pub fn datagen(args: &Args) -> Result<(), String> {
    let out = args
        .flag("out")
        .ok_or("datagen requires --out <file.store>")?;
    let defaults = ScaleConfig::default();
    let config = ScaleConfig {
        records: args.flag_or("records", defaults.records)?,
        seed: args.flag_or("seed", defaults.seed)?,
        exponent: args.flag_or("exponent", defaults.exponent)?,
        max_entity_size: args.flag_or("max-entity-size", defaults.max_entity_size)?,
        ..defaults
    };
    if config.records == 0 {
        return Err("--records must be at least 1".to_string());
    }
    let generator = ScaleGenerator::new(config);
    let mut builder = StoreBuilder::create(Path::new(out), generator.schema())
        .map_err(|e| format!("create {out}: {e}"))?;
    let start = std::time::Instant::now();
    let mut entities = 0u64;
    let mut last_entity = None;
    for (record, entity) in generator {
        if last_entity != Some(entity) {
            entities += 1;
            last_entity = Some(entity);
        }
        builder
            .push(&record, entity)
            .map_err(|e| format!("write {out}: {e}"))?;
    }
    let records = builder.len();
    builder
        .finish()
        .map_err(|e| format!("finalize {out}: {e}"))?;
    let wall = start.elapsed();
    println!(
        "wrote {records} records / {entities} entities to {out} in {wall:?} ({:.0} records/s)",
        records as f64 / wall.as_secs_f64().max(1e-9)
    );
    Ok(())
}

/// Builds the pairwise-oracle mode from `--oracle` and its satellite
/// flags. Satellite flags without `--oracle noisy` are an error rather
/// than silently ignored configuration.
fn oracle_mode(args: &Args) -> Result<OracleMode, String> {
    const SATELLITES: [&str; 7] = [
        "oracle-fp",
        "oracle-fn",
        "oracle-fault",
        "oracle-seed",
        "oracle-budget",
        "oracle-votes",
        "oracle-timeout-ms",
    ];
    match args.flag("oracle").unwrap_or("exact") {
        "exact" => {
            if let Some(flag) = SATELLITES.iter().find(|f| args.flag(f).is_some()) {
                return Err(format!("--{flag} requires --oracle noisy"));
            }
            Ok(OracleMode::Exact)
        }
        "noisy" => {
            let defaults = NoisyOracleConfig::default();
            let timeout_ms: u64 =
                args.flag_or("oracle-timeout-ms", defaults.timeout_micros / 1000)?;
            let cfg = NoisyOracleConfig {
                false_match_rate: args.flag_or("oracle-fp", defaults.false_match_rate)?,
                false_non_match_rate: args.flag_or("oracle-fn", defaults.false_non_match_rate)?,
                fault_rate: args.flag_or("oracle-fault", defaults.fault_rate)?,
                seed: args.flag_or("oracle-seed", defaults.seed)?,
                votes: args.flag_or("oracle-votes", defaults.votes)?,
                timeout_micros: timeout_ms.saturating_mul(1000),
                budget: match args.flag("oracle-budget") {
                    Some(v) => Some(v.parse().map_err(|e| format!("--oracle-budget {v}: {e}"))?),
                    None => None,
                },
                ..defaults
            };
            for (name, rate) in [
                ("oracle-fp", cfg.false_match_rate),
                ("oracle-fn", cfg.false_non_match_rate),
                ("oracle-fault", cfg.fault_rate),
            ] {
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("--{name} must be in [0, 1], got {rate}"));
                }
            }
            Ok(OracleMode::Noisy(cfg))
        }
        other => Err(format!("unknown oracle '{other}' (want exact or noisy)")),
    }
}

/// One-line oracle-ledger summary printed after a noisy run.
fn oracle_summary(spend: &OracleSpend) -> String {
    let budget = spend
        .budget
        .map_or(String::new(), |b| format!(" / budget {b}"));
    format!(
        "oracle: {} calls ({} attempts, {} retries, {} timeouts, {} errors), \
         {} degraded, spend {}{budget}",
        spend.calls,
        spend.attempts,
        spend.retries,
        spend.timeouts,
        spend.transient_errors,
        spend.degraded,
        spend.spent,
    )
}

fn run_method(
    args: &Args,
    store: &dyn RecordStore,
    rule: &adalsh_data::MatchRule,
    k: usize,
) -> Result<(String, FilterOutput), String> {
    let method = args.flag("method").unwrap_or("adalsh");
    // 0 = auto (the methods' default: available parallelism). Applies to
    // every method — they all end in `P` or threaded hashing.
    let threads: usize = args.flag_or("threads", 0usize)?;
    let trace_out = args.flag("trace-out");
    if trace_out.is_some() && method != "adalsh" {
        return Err(format!(
            "--trace-out instruments the adaLSH round loop; method '{method}' does not emit trace \
             events (drop --trace-out or use --method adalsh)"
        ));
    }
    let oracle = oracle_mode(args)?;
    if oracle != OracleMode::Exact && method != "adalsh" {
        return Err(format!(
            "--oracle noisy adjudicates through the adaLSH engine; method '{method}' always \
             applies the exact rule (drop --oracle or use --method adalsh)"
        ));
    }
    // A traced adaLSH run gets a `filter_run` span tree emitted into the
    // same JSONL file as the engine events, so `adalsh trace validate`
    // reconciles the two and `adalsh trace attribute` can break the wall
    // time into design / resolve / engine phases.
    let mut filter_spans: Option<FilterSpanContext> = None;
    let mut boxed: Box<dyn FilterMethod> = match method {
        "adalsh" => {
            let mut config = AdaLshConfig::new(rule.clone());
            if threads > 0 {
                config.threads = threads;
            }
            config.minhash_scheme = args.flag_or("minhash-scheme", MinhashScheme::Classic)?;
            config.oracle = oracle;
            if let Some(path) = trace_out {
                let sink = trace_sink(path)?;
                let spans = Spans::new(DEFAULT_RING_CAP, args.flag_or("slow-ms", 0u64)?);
                // The collector folds the run's engine events into the
                // per-segment sums the engine-derived child spans carry;
                // attached before any resolve so its segment numbering
                // matches the file's.
                let collector = Arc::new(SpanCollector::new());
                config.trace = sink.with(Arc::clone(&collector) as _);
                let root = spans.begin("filter_run", 0);
                let design = spans.begin("design", root.id);
                let engine = AdaLsh::for_dataset(store, config)?;
                spans.finish(design, &[], &sink);
                filter_spans = Some(FilterSpanContext {
                    spans,
                    sink,
                    collector,
                    root,
                });
                Box::new(engine)
            } else {
                Box::new(AdaLsh::for_dataset(store, config)?)
            }
        }
        "pairs" => {
            let mut pairs = Pairs::new(rule.clone());
            if threads > 0 {
                pairs = pairs.with_threads(threads);
            }
            Box::new(pairs)
        }
        m if m.starts_with("lsh") => {
            let x: u64 = m[3..]
                .parse()
                .map_err(|_| format!("bad method '{m}' (want lsh<X>, e.g. lsh1280)"))?;
            let mut lsh = LshBlocking::new(rule.clone(), x);
            if threads > 0 {
                lsh = lsh.with_threads(threads);
            }
            Box::new(lsh)
        }
        other => return Err(format!("unknown method '{other}'")),
    };
    let out = match &filter_spans {
        None => boxed.filter(store, k),
        Some(ctx) => {
            let resolve = ctx.spans.begin("resolve", ctx.root.id);
            let before = ProcSample::capture();
            let out = boxed.filter(store, k);
            let after = ProcSample::capture();
            // Engine-derived children: exact per-segment sums linked by
            // the `segment` field (a single-run trace has segment 1).
            if let Some(seg) = ctx.collector.take_last_segment() {
                let hash = ctx
                    .spans
                    .begin_at("hash_rounds", resolve.id, resolve.start_micros);
                ctx.spans.record(
                    hash,
                    seg.hash_wall_micros,
                    &[
                        ("segment", TraceValue::U64(seg.segment)),
                        ("hash_evals", TraceValue::U64(seg.hash_evals)),
                    ],
                    &ctx.sink,
                );
                let pairwise = ctx
                    .spans
                    .begin_at("pairwise", resolve.id, resolve.start_micros);
                ctx.spans.record(
                    pairwise,
                    seg.pairwise_wall_micros,
                    &[
                        ("segment", TraceValue::U64(seg.segment)),
                        ("pairs", TraceValue::U64(seg.pairs)),
                        ("oracle_calls", TraceValue::U64(seg.oracle_calls)),
                        ("oracle_spend", TraceValue::U64(seg.oracle_spend)),
                        (
                            "oracle_latency_micros",
                            TraceValue::U64(seg.oracle_latency_micros),
                        ),
                    ],
                    &ctx.sink,
                );
            }
            let mut fields: Vec<(&'static str, TraceValue<'static>)> = Vec::new();
            if let (Some(before), Some(after)) = (before, after) {
                // RSS/page-fault deltas attribute mmap-tier paging (the
                // --store path) to the resolve phase.
                fields.extend(before.delta_fields(&after));
            }
            ctx.spans.finish(resolve, &fields, &ctx.sink);
            ctx.spans.finish(
                ctx.root,
                &[
                    ("k", TraceValue::U64(k as u64)),
                    ("records", TraceValue::U64(store.len() as u64)),
                ],
                &ctx.sink,
            );
            out
        }
    };
    if let Some(path) = trace_out {
        println!("trace written to {path}");
    }
    Ok((boxed.name(), out))
}

/// Span plumbing for a traced `filter`/`evaluate` run: the recorder,
/// the JSONL sink span events are emitted through, the engine-event
/// collector, and the open `filter_run` root.
struct FilterSpanContext {
    spans: Spans,
    sink: TraceSink,
    collector: Arc<SpanCollector>,
    root: adalsh_obs::ActiveSpan,
}

/// Opens a JSONL trace writer as a [`TraceSink`].
fn trace_sink(path: &str) -> Result<TraceSink, String> {
    let subscriber =
        JsonlSubscriber::create(Path::new(path)).map_err(|e| format!("create {path}: {e}"))?;
    Ok(TraceSink::new(Arc::new(subscriber)))
}

/// `adalsh trace <validate|summarize|attribute> <file.jsonl>`
///
/// `validate` checks the trace against the event taxonomy and every
/// reconciliation identity (trace event sums must equal the run's
/// `Stats` totals — see `adalsh_obs::schema`); `summarize` renders a
/// per-level table of rounds, hash work, pairwise work, and wall time;
/// `attribute` validates, then renders the span trees as a per-phase
/// latency-attribution report (critical-path breakdown per root op).
pub fn trace(args: &Args) -> Result<(), String> {
    let action = args.positional(0, "trace action (validate|summarize|attribute)")?;
    let path = args.positional(1, "trace file")?;
    let events = jsonl::read_events(Path::new(path))?;
    match action {
        "validate" => {
            let report = schema::validate(&events)?;
            println!(
                "{path}: OK — {} events, {} complete run(s), all reconciliation identities hold",
                report.events, report.runs
            );
            Ok(())
        }
        "summarize" => {
            print!("{}", summary::summarize(&events));
            Ok(())
        }
        "attribute" => {
            // Attribution of an invalid span tree would be misleading —
            // validate first so every printed number is reconciled.
            schema::validate(&events)?;
            print!("{}", attr::attribute(&events));
            Ok(())
        }
        other => Err(format!(
            "unknown trace action '{other}' (want validate, summarize, or attribute)"
        )),
    }
}

/// `adalsh bench diff <current.json> <baseline.json> [--smoke]`
///
/// The bench-regression gate: compares every numeric metric of a fresh
/// recorder run against a committed `BENCH_*.json` baseline (see
/// [`crate::bench_diff`]). `--smoke` warns at the regular threshold and
/// fails only past 3x, for noisy CI machines.
pub fn bench(args: &Args) -> Result<(), String> {
    let action = args.positional(0, "bench action (diff)")?;
    if action != "diff" {
        return Err(format!("unknown bench action '{action}' (want diff)"));
    }
    let current_path = args.positional(1, "current bench JSON")?;
    let baseline_path = args.positional(2, "baseline bench JSON")?;
    let read = |path: &str| -> Result<serde::Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
    };
    let current = read(current_path)?;
    let baseline = read(baseline_path)?;
    let report = bench_diff::diff(&current, &baseline);
    if report.metrics.is_empty() {
        return Err(format!(
            "{current_path} and {baseline_path} share no numeric metrics — wrong baseline?"
        ));
    }
    let text = bench_diff::render_and_gate(&report, args.switch("smoke"))?;
    print!("{text}");
    println!("bench diff OK: {current_path} vs {baseline_path}");
    Ok(())
}
