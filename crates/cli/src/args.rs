//! Tiny dependency-free argument parsing for the `adalsh` CLI.
//!
//! Grammar: `adalsh <command> [positional…] [--flag value…]`. Flags are
//! always `--name value` pairs except boolean switches listed in
//! [`Args::switch`].

use std::collections::BTreeMap;

/// Parsed command line: a command, positionals, and `--flag value` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses raw arguments (excluding the program name).
    ///
    /// # Errors
    /// Fails on an empty argument list or a `--flag` without a value
    /// (unless it is a known boolean switch).
    pub fn parse<I: IntoIterator<Item = String>>(
        raw: I,
        bool_switches: &[&str],
    ) -> Result<Self, String> {
        let mut iter = raw.into_iter().peekable();
        let command = iter.next().ok_or("missing command")?;
        let mut positional = Vec::new();
        let mut flags = BTreeMap::new();
        let mut switches = Vec::new();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if bool_switches.contains(&name) {
                    switches.push(name.to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("flag --{name} needs a value"))?;
                    flags.insert(name.to_string(), value);
                }
            } else {
                positional.push(arg);
            }
        }
        Ok(Self {
            command,
            positional,
            flags,
            switches,
        })
    }

    /// The value of `--name`, if given.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// The value of `--name` parsed as `T`, or `default`.
    ///
    /// # Errors
    /// Fails if the value is present but does not parse.
    pub fn flag_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{name} {v}: {e}")),
        }
    }

    /// Is the boolean switch `--name` present?
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// The `i`-th positional argument.
    ///
    /// # Errors
    /// Fails with `what` in the message if absent.
    pub fn positional(&self, i: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing {what}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<Args, String> {
        Args::parse(parts.iter().map(|s| s.to_string()), &["verbose"])
    }

    #[test]
    fn parses_command_positionals_flags() {
        let a = parse(&["filter", "data.jsonl", "--k", "5", "--method", "adalsh"]).unwrap();
        assert_eq!(a.command, "filter");
        assert_eq!(a.positional, vec!["data.jsonl"]);
        assert_eq!(a.flag("k"), Some("5"));
        assert_eq!(a.flag("method"), Some("adalsh"));
        assert_eq!(a.flag("missing"), None);
    }

    #[test]
    fn switches_take_no_value() {
        let a = parse(&["info", "--verbose", "d.jsonl"]).unwrap();
        assert!(a.switch("verbose"));
        assert_eq!(a.positional, vec!["d.jsonl"]);
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse(&["filter", "--k"]).is_err());
    }

    #[test]
    fn empty_args_is_error() {
        assert!(Args::parse(std::iter::empty(), &[]).is_err());
    }

    #[test]
    fn flag_or_parses_and_defaults() {
        let a = parse(&["x", "--k", "7"]).unwrap();
        assert_eq!(a.flag_or("k", 1usize).unwrap(), 7);
        assert_eq!(a.flag_or("missing", 3usize).unwrap(), 3);
        let bad = parse(&["x", "--k", "seven"]).unwrap();
        assert!(bad.flag_or("k", 1usize).is_err());
    }

    #[test]
    fn positional_error_names_the_slot() {
        let a = parse(&["filter"]).unwrap();
        let err = a.positional(0, "dataset path").unwrap_err();
        assert!(err.contains("dataset path"));
    }
}
