//! `adalsh bench diff` — the bench-regression gate.
//!
//! Compares two `BENCH_*.json` files metric-by-metric: every numeric
//! leaf (outside the `_meta` provenance object) present in both files
//! is classified by its key name into *lower-is-better* (latencies,
//! wall times, RSS, spend, overhead ratios), *higher-is-better*
//! (throughput, recall/F1, speedups), or *informational* (counts and
//! sizes that describe the workload rather than its performance), and
//! a regression ratio is computed in the direction that makes `> 1`
//! mean "worse".
//!
//! Thresholds: in `--smoke` mode a metric past the warn ratio (1.3x)
//! is reported but tolerated — CI machines are noisy — while anything
//! past the fail ratio (3x) fails the gate. Without `--smoke` the warn
//! ratio itself is the failure threshold, for quiet dedicated boxes.

use serde::Value;

/// Regressions up to this ratio are warnings; beyond it (non-smoke) or
/// beyond [`FAIL_RATIO`] (smoke) the gate fails.
pub const WARN_RATIO: f64 = 1.3;

/// A smoke run tolerates warnings but still fails past this ratio — a
/// 3x regression is never machine noise.
pub const FAIL_RATIO: f64 = 3.0;

/// How a metric's regression ratio is oriented, inferred from its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Latency-like: `current / baseline > 1` is a regression.
    LowerIsBetter,
    /// Throughput-like: `baseline / current > 1` is a regression.
    HigherIsBetter,
    /// Workload descriptors (counts, sizes, config echoes): reported
    /// for context, never gated.
    Informational,
}

/// Classifies a metric by the last segment of its dotted path. Matching
/// is by substring over the lowercase key, higher-is-better checked
/// first so `qps`/`per_sec` win over an embedded `p50`-like fragment.
pub fn direction(path: &str) -> Direction {
    let key = path.rsplit('.').next().unwrap_or(path).to_ascii_lowercase();
    const HIGHER: &[&str] = &["qps", "per_sec", "recall", "f1", "speedup", "throughput"];
    const LOWER: &[&str] = &[
        "_seconds", "_secs", "_micros", "_ms", "p50", "p99", "wall", "rss", "spend", "overhead",
        "ratio", "latency",
    ];
    if HIGHER.iter().any(|m| key.contains(m)) {
        Direction::HigherIsBetter
    } else if LOWER.iter().any(|m| key.contains(m)) {
        Direction::LowerIsBetter
    } else {
        Direction::Informational
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    /// Dotted path of the numeric leaf.
    pub path: String,
    /// Value in the baseline file.
    pub baseline: f64,
    /// Value in the current file.
    pub current: f64,
    /// Gating direction inferred from the key.
    pub direction: Direction,
    /// Regression ratio oriented so `> 1` is worse; `None` when either
    /// side is nonpositive (nothing meaningful to divide) or the
    /// metric is informational.
    pub regression: Option<f64>,
}

/// The full comparison: per-metric rows plus the keys only one side has.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Metrics present in both files, in baseline order.
    pub metrics: Vec<MetricDiff>,
    /// Leaves only in the baseline (removed by the current run).
    pub only_baseline: Vec<String>,
    /// Leaves only in the current file (new metrics, not yet gated).
    pub only_current: Vec<String>,
}

/// Collects every numeric leaf under `value` into `out`, skipping any
/// subtree keyed `_meta` (provenance, not measurement).
fn numeric_leaves(prefix: &str, value: &Value, out: &mut Vec<(String, f64)>) {
    match value {
        Value::U64(v) => out.push((prefix.to_string(), *v as f64)),
        Value::I64(v) => out.push((prefix.to_string(), *v as f64)),
        Value::F64(v) => out.push((prefix.to_string(), *v)),
        Value::Map(entries) => {
            for (key, child) in entries {
                if key == "_meta" {
                    continue;
                }
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                numeric_leaves(&path, child, out);
            }
        }
        Value::Seq(items) => {
            for (i, child) in items.iter().enumerate() {
                numeric_leaves(&format!("{prefix}[{i}]"), child, out);
            }
        }
        Value::Null | Value::Bool(_) | Value::Str(_) => {}
    }
}

/// Compares `current` against `baseline`.
pub fn diff(current: &Value, baseline: &Value) -> DiffReport {
    let mut current_leaves = Vec::new();
    let mut baseline_leaves = Vec::new();
    numeric_leaves("", current, &mut current_leaves);
    numeric_leaves("", baseline, &mut baseline_leaves);
    let mut report = DiffReport::default();
    for (path, base) in &baseline_leaves {
        let Some((_, cur)) = current_leaves.iter().find(|(p, _)| p == path) else {
            report.only_baseline.push(path.clone());
            continue;
        };
        let dir = direction(path);
        let regression = match dir {
            Direction::Informational => None,
            _ if *base <= 0.0 || *cur <= 0.0 => None,
            Direction::LowerIsBetter => Some(cur / base),
            Direction::HigherIsBetter => Some(base / cur),
        };
        report.metrics.push(MetricDiff {
            path: path.clone(),
            baseline: *base,
            current: *cur,
            direction: dir,
            regression,
        });
    }
    for (path, _) in &current_leaves {
        if !baseline_leaves.iter().any(|(p, _)| p == path) {
            report.only_current.push(path.clone());
        }
    }
    report
}

/// Renders the report and applies the gate.
///
/// # Errors
/// Fails with the list of regressed metrics when any gated metric
/// crosses the applicable threshold (`smoke`: [`FAIL_RATIO`];
/// otherwise [`WARN_RATIO`]).
pub fn render_and_gate(report: &DiffReport, smoke: bool) -> Result<String, String> {
    let fail_at = if smoke { FAIL_RATIO } else { WARN_RATIO };
    let mut out = String::new();
    let mut failures: Vec<String> = Vec::new();
    let mut warned = 0usize;
    for m in &report.metrics {
        let verdict = match m.regression {
            None if m.direction == Direction::Informational => "info  ".to_string(),
            None => "      ".to_string(),
            Some(r) if r > fail_at => {
                failures.push(format!("{} {:.2}x", m.path, r));
                "FAIL  ".to_string()
            }
            Some(r) if r > WARN_RATIO => {
                warned += 1;
                "warn  ".to_string()
            }
            Some(r) if 1.0 / r > WARN_RATIO => "better".to_string(),
            Some(_) => "ok    ".to_string(),
        };
        let ratio = m
            .regression
            .map_or("     -".to_string(), |r| format!("{r:6.2}x"));
        out.push_str(&format!(
            "{verdict} {ratio}  {:<52} {:>14.6} -> {:>14.6}\n",
            m.path, m.baseline, m.current
        ));
    }
    for path in &report.only_baseline {
        out.push_str(&format!("gone   {path} (in baseline only)\n"));
    }
    for path in &report.only_current {
        out.push_str(&format!("new    {path} (not in baseline)\n"));
    }
    out.push_str(&format!(
        "{} metrics compared, {} warned (> {WARN_RATIO}x), {} failed (> {fail_at}x)\n",
        report.metrics.len(),
        warned,
        failures.len()
    ));
    if failures.is_empty() {
        Ok(out)
    } else {
        Err(format!(
            "{out}bench regression gate failed: {}",
            failures.join(", ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Value {
        serde_json::from_str(text).unwrap()
    }

    #[test]
    fn direction_is_inferred_from_the_key() {
        assert_eq!(
            direction("pipeline.read.c16.qps"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            direction("ingest.accepted_records_per_sec"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction("read.c1.p99_seconds"), Direction::LowerIsBetter);
        assert_eq!(direction("span_overhead_ratio"), Direction::LowerIsBetter);
        assert_eq!(direction("peak_rss_bytes"), Direction::LowerIsBetter);
        assert_eq!(direction("records"), Direction::Informational);
    }

    #[test]
    fn meta_subtrees_are_skipped() {
        let base = parse("{\"_meta\": {\"peak_rss_bytes\": 1}, \"x_seconds\": 1.0}");
        let cur = parse("{\"_meta\": {\"peak_rss_bytes\": 99}, \"x_seconds\": 1.0}");
        let report = diff(&cur, &base);
        assert_eq!(report.metrics.len(), 1);
        assert_eq!(report.metrics[0].path, "x_seconds");
    }

    #[test]
    fn smoke_tolerates_warnings_but_not_3x() {
        let base = parse("{\"a_seconds\": 1.0, \"b_qps\": 100.0}");
        let warned = parse("{\"a_seconds\": 2.0, \"b_qps\": 100.0}");
        let report = diff(&warned, &base);
        let text = render_and_gate(&report, true).unwrap();
        assert!(text.contains("warn"), "{text}");
        assert!(
            render_and_gate(&report, false).is_err(),
            "strict mode gates at warn"
        );

        let tanked = parse("{\"a_seconds\": 1.0, \"b_qps\": 25.0}");
        let report = diff(&tanked, &base);
        let err = render_and_gate(&report, true).unwrap_err();
        assert!(err.contains("b_qps"), "{err}");
        assert!(err.contains("4.00x"), "{err}");
    }

    #[test]
    fn improvements_and_missing_metrics_are_reported_not_gated() {
        let base = parse("{\"a_seconds\": 2.0, \"old_seconds\": 1.0}");
        let cur = parse("{\"a_seconds\": 1.0, \"new_seconds\": 1.0}");
        let report = diff(&cur, &base);
        assert_eq!(report.only_baseline, vec!["old_seconds"]);
        assert_eq!(report.only_current, vec!["new_seconds"]);
        let text = render_and_gate(&report, false).unwrap();
        assert!(text.contains("better"), "{text}");
        assert!(text.contains("gone"), "{text}");
        assert!(text.contains("new "), "{text}");
    }

    #[test]
    fn informational_and_zero_metrics_are_never_gated() {
        let base = parse("{\"records\": 10, \"z_seconds\": 0.0}");
        let cur = parse("{\"records\": 10000, \"z_seconds\": 5.0}");
        let report = diff(&cur, &base);
        assert!(render_and_gate(&report, false).is_ok());
    }
}
