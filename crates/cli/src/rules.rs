//! Rule-spec parsing for the CLI.

use adalsh_data::{FieldDistance, FieldKind, MatchRule, Schema};

/// Parses a `--rule` spec against a schema, or infers a sensible
/// default from the first field's kind. Taking the schema (rather than
/// a materialized dataset) lets the same path serve in-RAM datasets
/// and memory-mapped store files.
///
/// # Errors
/// Fails on unknown specs, non-numeric thresholds, or rules that don't
/// validate against the schema.
pub fn resolve(spec: Option<&str>, schema: &Schema) -> Result<MatchRule, String> {
    let rule = match spec {
        None => default_rule(schema),
        Some("cora") => adalsh_datagen::cora::match_rule(),
        Some(s) => {
            let (kind, value) = s
                .split_once(':')
                .ok_or_else(|| format!("bad rule spec '{s}' (want kind:value)"))?;
            let value: f64 = value
                .parse()
                .map_err(|e| format!("bad rule threshold '{value}': {e}"))?;
            match kind {
                "jaccard" => MatchRule::threshold(0, FieldDistance::Jaccard, value),
                "angular" => MatchRule::threshold(0, FieldDistance::Angular, value / 180.0),
                other => return Err(format!("unknown rule kind '{other}'")),
            }
        }
    };
    rule.validate(schema)
        .map_err(|e| format!("rule does not fit dataset: {e}"))?;
    Ok(rule)
}

fn default_rule(schema: &Schema) -> MatchRule {
    match schema.fields()[0].kind {
        FieldKind::Shingles => MatchRule::threshold(0, FieldDistance::Jaccard, 0.6),
        FieldKind::Dense => MatchRule::threshold(0, FieldDistance::Angular, 3.0 / 180.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_data::{Dataset, FieldValue, Record, ShingleSet};

    fn shingle_dataset() -> Dataset {
        Dataset::new(
            Schema::single("s", FieldKind::Shingles),
            vec![Record::single(FieldValue::Shingles(ShingleSet::new(vec![
                1,
            ])))],
            vec![0],
        )
    }

    #[test]
    fn default_for_shingles_is_jaccard() {
        let d = shingle_dataset();
        let r = resolve(None, d.schema()).unwrap();
        assert!(matches!(
            r,
            MatchRule::Threshold {
                metric: FieldDistance::Jaccard,
                ..
            }
        ));
    }

    #[test]
    fn explicit_jaccard_spec() {
        let d = shingle_dataset();
        match resolve(Some("jaccard:0.5"), d.schema()).unwrap() {
            MatchRule::Threshold { dthr, .. } => assert!((dthr - 0.5).abs() < 1e-12),
            _ => panic!(),
        }
    }

    #[test]
    fn angular_spec_converts_degrees() {
        use adalsh_data::DenseVector;
        let d = Dataset::new(
            Schema::single("v", FieldKind::Dense),
            vec![Record::single(FieldValue::Dense(DenseVector::new(vec![
                1.0,
            ])))],
            vec![0],
        );
        match resolve(Some("angular:9"), d.schema()).unwrap() {
            MatchRule::Threshold { dthr, .. } => assert!((dthr - 0.05).abs() < 1e-12),
            _ => panic!(),
        }
    }

    #[test]
    fn mismatched_rule_rejected() {
        let d = shingle_dataset();
        assert!(resolve(Some("angular:3"), d.schema()).is_err());
    }

    #[test]
    fn garbage_specs_rejected() {
        let d = shingle_dataset();
        assert!(resolve(Some("nope"), d.schema()).is_err());
        assert!(resolve(Some("jaccard:abc"), d.schema()).is_err());
        assert!(resolve(Some("minhash:0.3"), d.schema()).is_err());
    }
}
