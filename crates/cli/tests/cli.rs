//! End-to-end tests of the `adalsh` binary: generate → info → filter →
//! evaluate over a temporary dataset file.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_adalsh"))
}

fn tmpfile(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("adalsh_cli_tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

fn generate(path: &Path) {
    let out = bin()
        .args([
            "generate",
            "spotsigs",
            "--out",
            path.to_str().unwrap(),
            "--records",
            "300",
            "--entities",
            "40",
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn generate_then_info() {
    let path = tmpfile("gi.jsonl");
    generate(&path);
    let out = bin()
        .args(["info", path.to_str().unwrap()])
        .output()
        .expect("run info");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("records:  300"), "{text}");
    assert!(text.contains("signatures"), "{text}");
}

#[test]
fn filter_prints_clusters_and_writes_json() {
    let data = tmpfile("f.jsonl");
    let clusters = tmpfile("f_clusters.json");
    generate(&data);
    let out = bin()
        .args([
            "filter",
            data.to_str().unwrap(),
            "--k",
            "3",
            "--rule",
            "jaccard:0.6",
            "--out",
            clusters.to_str().unwrap(),
        ])
        .output()
        .expect("run filter");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("adaLSH: 3 clusters"), "{text}");
    let json = std::fs::read_to_string(&clusters).expect("clusters file");
    let parsed: Vec<Vec<u32>> = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(parsed.len(), 3);
}

#[test]
fn evaluate_reports_metrics() {
    let data = tmpfile("e.jsonl");
    generate(&data);
    let out = bin()
        .args(["evaluate", data.to_str().unwrap(), "--k", "3"])
        .output()
        .expect("run evaluate");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("F1 gold:"), "{text}");
    assert!(text.contains("with recovery:"), "{text}");
}

#[test]
fn evaluate_methods_agree() {
    let data = tmpfile("m.jsonl");
    generate(&data);
    for method in ["adalsh", "pairs", "lsh320"] {
        let out = bin()
            .args([
                "evaluate",
                data.to_str().unwrap(),
                "--k",
                "2",
                "--method",
                method,
            ])
            .output()
            .expect("run evaluate");
        assert!(
            out.status.success(),
            "{method}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let data = tmpfile("t.jsonl");
    generate(&data);
    let run = |method: &str, threads: &str| {
        let out = bin()
            .args([
                "filter",
                data.to_str().unwrap(),
                "--k",
                "3",
                "--method",
                method,
                "--threads",
                threads,
            ])
            .output()
            .expect("run filter");
        assert!(
            out.status.success(),
            "--method {method} --threads {threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    // Identical clusters and identical operation counts at any thread
    // count — the parallel path's determinism contract, for every
    // method that runs `P` or threaded hashing.
    let strip_time = |s: &str| {
        s.lines()
            .map(|l| {
                if let (Some(i), Some(j)) = (l.find("clusters, "), l.find(" (")) {
                    format!("{}{}", &l[..i], &l[j..])
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    for method in ["adalsh", "pairs", "lsh320"] {
        let single = run(method, "1");
        let multi = run(method, "4");
        assert_eq!(strip_time(&single), strip_time(&multi), "method {method}");
    }
}

#[test]
fn serve_boots_answers_health_and_topk_and_dies_cleanly() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    let data = tmpfile("serve.jsonl");
    generate(&data);

    let mut child = bin()
        .args([
            "serve",
            data.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--rule",
            "jaccard:0.6",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // The server prints its bound address once ready; with port 0 this
    // is the only way to learn the ephemeral port.
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before announcing its address")
            .expect("read stdout");
        if let Some(rest) = line.strip_prefix("listening on http://") {
            break rest.to_string();
        }
    };

    let http = |raw: String| -> String {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("receive");
        response
    };

    let health = http("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n".to_string());
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    assert!(health.contains("\"records\":300"), "{health}");

    let topk = http("GET /topk?k=2 HTTP/1.1\r\nHost: t\r\n\r\n".to_string());
    assert!(topk.starts_with("HTTP/1.1 200"), "{topk}");
    assert!(topk.contains("\"clusters\":"), "{topk}");

    let metrics = http("GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n".to_string());
    assert!(metrics.contains("adalsh_requests_total"), "{metrics}");

    child.kill().expect("kill serve");
    child.wait().expect("reap serve");
}

#[test]
fn filter_trace_roundtrip_validates_and_summarizes() {
    let data = tmpfile("tr.jsonl");
    let trace = tmpfile("tr_trace.jsonl");
    generate(&data);
    let out = bin()
        .args([
            "filter",
            data.to_str().unwrap(),
            "--k",
            "3",
            "--rule",
            "jaccard:0.6",
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("run filter");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("trace written to"), "{text}");

    // Every line is a flat JSON event, bracketed by run_start/run_end.
    let raw = std::fs::read_to_string(&trace).expect("trace file");
    assert!(raw.contains("\"ev\":\"run_start\""), "{raw}");
    assert!(raw.contains("\"ev\":\"run_end\""), "{raw}");

    // `trace validate` reconciles the events against the Stats totals.
    let out = bin()
        .args(["trace", "validate", trace.to_str().unwrap()])
        .output()
        .expect("run trace validate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("OK"), "{text}");
    assert!(text.contains("1 complete run"), "{text}");

    // `trace summarize` renders the per-level table.
    let out = bin()
        .args(["trace", "summarize", trace.to_str().unwrap()])
        .output()
        .expect("run trace summarize");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("H1"), "{text}");
    assert!(text.contains("level"), "{text}");
}

#[test]
fn filter_trace_carries_spans_and_attributes() {
    let data = tmpfile("sp.jsonl");
    let trace = tmpfile("sp_trace.jsonl");
    generate(&data);
    let out = bin()
        .args([
            "filter",
            data.to_str().unwrap(),
            "--k",
            "3",
            "--rule",
            "jaccard:0.6",
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("run filter");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The trace now carries the filter_run span tree alongside the
    // engine events: a root with design/resolve phases plus the
    // engine-derived hash_rounds/pairwise children.
    let raw = std::fs::read_to_string(&trace).expect("trace file");
    for op in ["filter_run", "design", "resolve", "hash_rounds", "pairwise"] {
        assert!(
            raw.contains(&format!("\"op\":\"{op}\"")),
            "missing span op {op} in:\n{raw}"
        );
    }

    // `trace validate` checks the span-tree invariants too.
    let out = bin()
        .args(["trace", "validate", trace.to_str().unwrap()])
        .output()
        .expect("run trace validate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // `trace attribute` renders the per-phase latency breakdown.
    let out = bin()
        .args(["trace", "attribute", trace.to_str().unwrap()])
        .output()
        .expect("run trace attribute");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("filter_run"), "{text}");
    assert!(text.contains("resolve"), "{text}");
}

#[test]
fn bench_diff_gates_regressions() {
    let base = tmpfile("bd_base.json");
    let good = tmpfile("bd_good.json");
    let warn = tmpfile("bd_warn.json");
    let bad = tmpfile("bd_bad.json");
    std::fs::write(&base, "{\"run_seconds\": 1.0, \"ingest_qps\": 100.0}\n").unwrap();
    std::fs::write(&good, "{\"run_seconds\": 1.05, \"ingest_qps\": 98.0}\n").unwrap();
    std::fs::write(&warn, "{\"run_seconds\": 1.6, \"ingest_qps\": 100.0}\n").unwrap();
    std::fs::write(&bad, "{\"run_seconds\": 4.0, \"ingest_qps\": 100.0}\n").unwrap();

    let diff = |cur: &Path, smoke: bool| {
        let mut cmd = bin();
        cmd.args([
            "bench",
            "diff",
            cur.to_str().unwrap(),
            base.to_str().unwrap(),
        ]);
        if smoke {
            cmd.arg("--smoke");
        }
        cmd.output().expect("run bench diff")
    };

    // Within noise: passes either way.
    let out = diff(&good, false);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("bench diff OK"));

    // 1.6x: strict mode fails, smoke tolerates it as a warning.
    let out = diff(&warn, false);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("regression gate failed"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = diff(&warn, true);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 4x: fails even the smoke gate.
    let out = diff(&bad, true);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("run_seconds"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bench_diff_rejects_disjoint_files() {
    let a = tmpfile("bd_a.json");
    let b = tmpfile("bd_b.json");
    std::fs::write(&a, "{\"x_seconds\": 1.0}\n").unwrap();
    std::fs::write(&b, "{\"y_seconds\": 1.0}\n").unwrap();
    let out = bin()
        .args(["bench", "diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .expect("run bench diff");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no numeric metrics"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn trace_out_rejected_for_untraced_methods() {
    let data = tmpfile("trm.jsonl");
    generate(&data);
    let out = bin()
        .args([
            "filter",
            data.to_str().unwrap(),
            "--k",
            "2",
            "--method",
            "pairs",
            "--trace-out",
            tmpfile("trm_trace.jsonl").to_str().unwrap(),
        ])
        .output()
        .expect("run filter");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("adaLSH"), "{err}");
}

#[test]
fn trace_validate_rejects_garbage() {
    let bad = tmpfile("garbage.jsonl");
    std::fs::write(&bad, "{\"ev\":\"not_an_event\"}\n").unwrap();
    let out = bin()
        .args(["trace", "validate", bad.to_str().unwrap()])
        .output()
        .expect("run trace validate");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown event"), "{err}");
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = bin().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"), "{err}");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = bin()
        .args(["info", "/nonexistent/nope.jsonl"])
        .output()
        .expect("run");
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage() {
    let out = bin().args(["--help"]).output().expect("run");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
