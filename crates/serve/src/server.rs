//! The TCP accept loop and bounded worker pool.
//!
//! Architecture: one accept thread blocks on [`TcpListener::accept`],
//! stamps per-connection read/write timeouts, and pushes accepted
//! sockets onto a **bounded** queue (`mpsc::sync_channel`). A fixed
//! pool of worker threads pops from the queue, parses one request per
//! connection, dispatches it to the [`Service`], and writes the
//! response. When the queue is full the accept thread answers `503`
//! inline instead of queueing unboundedly — overload sheds load instead
//! of growing memory.
//!
//! The accept call blocks rather than polling: an earlier revision
//! spun a non-blocking listener with a 5 ms sleep, which put a 5 ms
//! floor under *every* request a sequential client issues (accept can
//! only happen on a poll tick). Blocking accepts remove that floor;
//! shutdown wakes the blocked call by connecting to the listener
//! itself.
//!
//! Shutdown is graceful: [`Server::shutdown`] flips a flag, pokes the
//! listener with a loopback connection so `accept` returns, and the
//! accept thread stops accepting and drops the queue sender; workers
//! drain whatever was already queued, and everything is joined before
//! `shutdown` returns.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::http::{read_request, write_response, Request, RequestError, Response};
use crate::service::{Service, DEFAULT_MAX_BODY_BYTES};

/// Tunables for the HTTP layer.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling requests.
    pub workers: usize,
    /// Cap on request bodies, in bytes (`413` beyond it).
    pub max_body_bytes: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// A running server; dropping it without calling [`Server::shutdown`]
/// detaches the threads (the process exit reaps them).
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept thread plus worker pool.
    ///
    /// # Errors
    /// Fails if the address cannot be bound.
    pub fn start(service: Arc<Service>, addr: &str, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("adalsh-accept".to_string())
                .spawn(move || accept_loop(listener, service, config, &shutdown))?
        };

        Ok(Self {
            local_addr,
            shutdown,
            accept_handle: Some(accept_handle),
        })
    }

    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains queued connections, and joins every
    /// thread before returning.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking `accept` so it observes the flag: a plain
        // loopback connection is enough (the accept loop re-checks the
        // flag after every returned connection and drops this one).
        let wake = SocketAddr::new([127, 0, 0, 1].into(), self.local_addr.port());
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

/// Accepts connections until shutdown, then drops the queue sender so
/// workers drain and exit.
fn accept_loop(
    listener: TcpListener,
    service: Arc<Service>,
    config: ServerConfig,
    shutdown: &AtomicBool,
) {
    let workers = config.workers.max(1);
    let (sender, receiver) = sync_channel::<TcpStream>(workers * 2);
    let receiver = Arc::new(Mutex::new(receiver));
    let worker_handles: Vec<JoinHandle<()>> = (0..workers)
        .map(|i| {
            let receiver = Arc::clone(&receiver);
            let service = Arc::clone(&service);
            let max_body = config.max_body_bytes;
            std::thread::Builder::new()
                .name(format!("adalsh-worker-{i}"))
                .spawn(move || worker_loop(&receiver, &service, max_body))
                .expect("spawn worker thread")
        })
        .collect();

    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Re-check after every accept: the shutdown path wakes
                // this blocking call with a throwaway connection.
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let _ = stream.set_read_timeout(Some(config.read_timeout));
                let _ = stream.set_write_timeout(Some(config.write_timeout));
                match sender.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut stream)) => {
                        let response = Response::error(503, "server overloaded, retry later");
                        let _ = write_response(&mut stream, &response);
                        service.metrics().observe_request(
                            "unmatched",
                            503,
                            Duration::from_micros(0),
                        );
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            // Transient accept errors (e.g. the peer reset before the
            // handshake finished) — back off briefly and keep serving.
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }

    // Graceful drain: close the queue, let workers finish what's in it.
    drop(sender);
    for handle in worker_handles {
        let _ = handle.join();
    }
}

/// Pops connections until the queue closes.
fn worker_loop(receiver: &Arc<Mutex<Receiver<TcpStream>>>, service: &Service, max_body: usize) {
    loop {
        let next = {
            let guard = receiver
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        match next {
            Ok(stream) => handle_connection(service, stream, max_body),
            Err(_) => return, // sender dropped: shutdown
        }
    }
}

/// Serves exactly one request on a connection. Every failure path that
/// can still be answered is answered with a structured JSON error; a
/// worker never unwinds out of this function.
fn handle_connection(service: &Service, mut stream: TcpStream, max_body: usize) {
    let start = Instant::now();
    let (endpoint, response) = match read_request(&mut stream, max_body) {
        Ok(request) => dispatch(service, &request),
        Err(RequestError::Bad(message)) => ("unmatched", Response::error(400, &message)),
        Err(RequestError::TooLarge { limit }) => (
            "unmatched",
            Response::error(413, &format!("request body exceeds the {limit}-byte limit")),
        ),
        Err(RequestError::Io(e))
            if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
        {
            (
                "unmatched",
                Response::error(408, "timed out reading request"),
            )
        }
        // The peer is gone; nothing to answer.
        Err(RequestError::Io(_)) => return,
    };
    let status = response.status;
    let _ = write_response(&mut stream, &response);
    service
        .metrics()
        .observe_request(endpoint, status, start.elapsed());
}

/// Runs the service handler, converting a panic into a `500` so one bad
/// request cannot take a worker (or the server) down.
fn dispatch(service: &Service, request: &Request) -> (&'static str, Response) {
    match catch_unwind(AssertUnwindSafe(|| service.handle(request))) {
        Ok(result) => result,
        Err(_) => (
            "unmatched",
            Response::error(500, "internal error handling request"),
        ),
    }
}
