//! Single-writer, many-reader epoch publication of an immutable value.
//!
//! The resolver thread periodically produces a new immutable
//! [`Arc`]-wrapped snapshot; request workers want the current one
//! without ever blocking behind the resolver. `std` has no atomic
//! `Arc` swap, so this module implements the classic *left-right*
//! double-buffer: two slots, an atomic index naming the slot readers
//! should use, and a per-slot reader count that tells the single writer
//! when the *inactive* slot is free to overwrite.
//!
//! Reader ([`ReadHandle::load`]): read the front index, register on that
//! slot, re-check the index, clone the `Arc`, deregister. If the index
//! moved between the first read and the re-check, the registration may
//! be on the writer's target slot — back out and retry (the retry
//! window is a handful of instructions during a publish; readers never
//! wait on a lock and never contend with the resolver's *work*, only
//! with the pointer flip itself).
//!
//! Writer ([`Publisher::publish`]): wait until the *back* slot's reader
//! count drains to zero (stragglers that registered just before the
//! previous flip), overwrite its value, then flip the front index. The
//! writer is unique by construction — [`Publisher`] is not `Clone` and
//! `publish` takes `&mut self` — so no writer-writer coordination
//! exists at all.
//!
//! ## Why this is sound
//!
//! All index/count operations are `SeqCst`, so there is one total order
//! `S` over them. Suppose a reader's clone of slot `b` could race a
//! writer overwriting `b`. The reader re-checked `front == b` *after*
//! registering, so in `S` its registration precedes the re-check, and
//! the re-check read a flip-to-`b` store that happened after the
//! previous write to `b` completed. For the *next* write to `b` to
//! start, the writer's drain loop must read a zero count *after* the
//! front moved off `b` — but the reader's registration is already in
//! the count's modification order before that read (otherwise the
//! re-check could not have seen `front == b`, because the flips are
//! ordered in `S`), so the drain loop observes the reader and waits
//! until it deregisters, which happens only after the clone completes.
//! The `release` flip / `acquire` re-check pairing also makes the
//! writer's slot write *happen-before* any reader clone that sees the
//! flip, so the reader always clones a fully-written `Arc`.
//!
//! This is the only `unsafe` code in the workspace; it is confined to
//! the two slot accesses and stress-tested below.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared state of one published slot pair.
struct Shared<T> {
    slots: [Slot<T>; 2],
    /// Index (0 or 1) of the slot readers should load from.
    front: AtomicUsize,
    /// Monotone publication count (0 = the initial value), readable
    /// without loading the value itself.
    version: AtomicU64,
}

struct Slot<T> {
    /// Readers currently inside this slot's register/clone window.
    readers: AtomicUsize,
    value: UnsafeCell<Arc<T>>,
}

// SAFETY: `value` is only written by the unique `Publisher` while the
// slot is unreachable to new readers (front names the other slot) and
// drained of registered ones; readers only clone through a shared
// reference. `Arc<T>` crossing threads needs `T: Send + Sync`.
unsafe impl<T: Send + Sync> Sync for Shared<T> {}
unsafe impl<T: Send + Sync> Send for Shared<T> {}

/// Creates a published slot holding `initial`, returning the unique
/// writer handle and a cloneable reader handle.
pub fn published<T: Send + Sync>(initial: Arc<T>) -> (Publisher<T>, ReadHandle<T>) {
    let shared = Arc::new(Shared {
        slots: [
            Slot {
                readers: AtomicUsize::new(0),
                value: UnsafeCell::new(Arc::clone(&initial)),
            },
            Slot {
                readers: AtomicUsize::new(0),
                value: UnsafeCell::new(initial),
            },
        ],
        front: AtomicUsize::new(0),
        version: AtomicU64::new(0),
    });
    (
        Publisher {
            shared: Arc::clone(&shared),
        },
        ReadHandle { shared },
    )
}

/// The unique writer. Not `Clone`; `publish` takes `&mut self`.
pub struct Publisher<T: Send + Sync> {
    shared: Arc<Shared<T>>,
}

impl<T: Send + Sync> Publisher<T> {
    /// Replaces the published value. Lock-free for readers; the writer
    /// may briefly spin waiting for straggler readers to leave the slot
    /// it is about to overwrite (their critical section is one `Arc`
    /// clone).
    pub fn publish(&mut self, value: Arc<T>) {
        let shared = &*self.shared;
        let front = shared.front.load(Ordering::SeqCst);
        let back = 1 - front;
        // New readers can only enter the front slot; drain stragglers
        // still registered on the back one.
        while shared.slots[back].readers.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        // SAFETY: `back != front`, so no new reader registers here, and
        // the drain above saw zero registered readers — the module-level
        // argument shows none can still be inside the clone window. The
        // old `Arc` is dropped in place.
        unsafe {
            *shared.slots[back].value.get() = value;
        }
        shared.front.store(back, Ordering::SeqCst);
        shared.version.fetch_add(1, Ordering::SeqCst);
    }

    /// A reader handle sharing this publisher's slot.
    pub fn subscribe(&self) -> ReadHandle<T> {
        ReadHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// A cheap cloneable reader handle.
pub struct ReadHandle<T: Send + Sync> {
    shared: Arc<Shared<T>>,
}

impl<T: Send + Sync> Clone for ReadHandle<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Send + Sync> ReadHandle<T> {
    /// Clones the currently published `Arc`. Never blocks on a lock and
    /// never touches the writer's state; during a concurrent publish it
    /// may retry the register/re-check handshake a bounded-in-practice
    /// number of times.
    pub fn load(&self) -> Arc<T> {
        let shared = &*self.shared;
        loop {
            let i = shared.front.load(Ordering::SeqCst);
            shared.slots[i].readers.fetch_add(1, Ordering::SeqCst);
            if shared.front.load(Ordering::SeqCst) == i {
                // SAFETY: registered on the front slot and the front
                // still names it — the writer's drain loop now waits for
                // this registration before overwriting (see module doc).
                let value = unsafe { (*shared.slots[i].value.get()).clone() };
                shared.slots[i].readers.fetch_sub(1, Ordering::SeqCst);
                return value;
            }
            // The front moved while registering: this slot may be the
            // writer's target. Back out and retry on the new front.
            shared.slots[i].readers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Number of `publish` calls so far (0 = initial value only).
    pub fn version(&self) -> u64 {
        self.shared.version.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_initial_then_published() {
        let (mut publisher, reader) = published(Arc::new(1u64));
        assert_eq!(*reader.load(), 1);
        assert_eq!(reader.version(), 0);
        publisher.publish(Arc::new(2));
        assert_eq!(*reader.load(), 2);
        publisher.publish(Arc::new(3));
        assert_eq!(*reader.load(), 3);
        assert_eq!(reader.version(), 2);
    }

    #[test]
    fn subscribe_and_clone_share_the_slot() {
        let (mut publisher, reader) = published(Arc::new(10u64));
        let other = publisher.subscribe();
        let third = reader.clone();
        publisher.publish(Arc::new(11));
        assert_eq!(*other.load(), 11);
        assert_eq!(*third.load(), 11);
    }

    /// Readers hammer `load` while the writer publishes thousands of
    /// monotonically increasing epochs. Every observed value must be
    /// monotone per reader (no torn or resurrected snapshots), and the
    /// final value must be the last published one.
    #[test]
    fn concurrent_reads_see_monotone_epochs() {
        const PUBLISHES: u64 = 20_000;
        const READERS: usize = 4;
        let (mut publisher, reader) = published(Arc::new(0u64));
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let handle = reader.clone();
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut observed = 0u64;
                    while last < PUBLISHES {
                        let seen = *handle.load();
                        assert!(seen >= last, "epoch went backwards: {seen} < {last}");
                        last = seen;
                        observed += 1;
                    }
                    observed
                })
            })
            .collect();
        for epoch in 1..=PUBLISHES {
            publisher.publish(Arc::new(epoch));
        }
        for handle in readers {
            let observed = handle.join().expect("reader panicked");
            assert!(observed > 0);
        }
        assert_eq!(*reader.load(), PUBLISHES);
        assert_eq!(reader.version(), PUBLISHES);
    }

    /// The old `Arc` is dropped on overwrite: publishing N values keeps
    /// at most the two slot residents alive.
    #[test]
    fn old_values_are_released() {
        let probe = Arc::new(42u64);
        let weak = Arc::downgrade(&probe);
        let (mut publisher, reader) = published(probe);
        publisher.publish(Arc::new(1));
        publisher.publish(Arc::new(2));
        assert!(
            weak.upgrade().is_none(),
            "initial value must be dropped after two publishes"
        );
        assert_eq!(*reader.load(), 2);
    }
}
