//! Service metrics with Prometheus text exposition, built on the shared
//! [`adalsh_obs`] registry.
//!
//! The registry is lock-light: counters and histogram buckets are
//! atomics, and the only mutexes guard the small label maps and the
//! family list. A scrape renders the standard text format without
//! touching the resolver lock, so `/metrics` stays responsive while a
//! long query holds the engine.
//!
//! Besides the request-level families, the service folds the engine's
//! structured trace into **engine histograms**: an [`EngineMetrics`]
//! subscriber rides on the resolver's [`adalsh_obs::TraceSink`] and
//! turns `hash_round` / `pairwise_block` / `gate` events into
//! `adalsh_engine_*` families, giving per-round latency distributions
//! and gate-decision counts on the same scrape endpoint.

use std::sync::Arc;
use std::time::Duration;

use adalsh_obs::{
    Counter, Event, Gauge, GaugeF64, Histogram, LabeledCounter, Registry, Subscriber,
};

/// Upper bounds (seconds) of the request-latency histogram buckets; a
/// final `+Inf` bucket is implicit. Spans sub-millisecond health checks
/// to multi-second cold queries.
pub const LATENCY_BUCKETS_SECS: [f64; 8] = [0.001, 0.005, 0.025, 0.1, 0.25, 1.0, 2.5, 10.0];

/// Upper bounds (seconds) for the pipeline-pass histograms
/// (`adalsh_publish_seconds`, `adalsh_ingest_to_visible_seconds`): a
/// coalesced resolve pass at scale-tier load (10⁶ records, PR 9's mmap
/// store) legitimately runs tens of seconds, so the tail extends well
/// past the request-latency buckets instead of saturating at 10s.
pub const PIPELINE_BUCKETS_SECS: [f64; 11] = [
    0.001, 0.005, 0.025, 0.1, 0.25, 1.0, 2.5, 10.0, 30.0, 60.0, 120.0,
];

/// Upper bounds (seconds) for the engine-internal histograms: hash
/// rounds and pairwise blocks run from microseconds (tiny clusters) to
/// seconds (the level-1 sweep over the whole corpus).
pub const ENGINE_BUCKETS_SECS: [f64; 7] = [1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0];

/// Upper bounds (records) for the resolve-pass batch-size histogram:
/// one pass coalesces anywhere from a single record to `--max-batch`,
/// and the scale tier drives batches into the 10⁴–10⁵ range — the top
/// finite bucket sits above that so heavy passes don't all collapse
/// into `+Inf`.
pub const BATCH_BUCKETS_RECORDS: [f64; 9] = [
    1.0, 8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0, 32768.0, 131072.0,
];

/// All counters exported on `/metrics`.
pub struct Metrics {
    registry: Registry,
    /// Requests by `(endpoint, status)`.
    requests: LabeledCounter,
    /// Request wall latency (exact f64 sum — not truncated to micros).
    latency: Histogram,
    /// Records accepted by `/ingest` since startup (resumed records are
    /// not counted: this meters service work, not corpus size).
    ingested_records: Counter,
    /// External verdicts accepted over `POST /adjudicate`.
    overlay_verdicts: Counter,
    /// Version of the external-verdict overlay (bumps per verdict).
    overlay_version: Gauge,
    /// Trace-fed engine families (shares `registry`).
    engine: Arc<EngineMetrics>,
    /// Ingest-pipeline families (shares `registry`); handed to the
    /// [`crate::pipeline::Pipeline`] at construction.
    pipeline: PipelineMetrics,
}

impl Metrics {
    /// Creates an empty registry with every family pre-registered (so a
    /// scrape before the first request still lists them all).
    pub fn new() -> Self {
        let registry = Registry::new();
        let requests = registry.labeled_counter(
            "adalsh_requests_total",
            "Requests served, by endpoint and status.",
            &["endpoint", "status"],
        );
        let latency = registry.histogram(
            "adalsh_request_seconds",
            "Request wall latency.",
            &LATENCY_BUCKETS_SECS,
        );
        let ingested_records = registry.counter(
            "adalsh_ingested_records_total",
            "Records accepted over /ingest since startup.",
        );
        let overlay_verdicts = registry.counter(
            "adalsh_oracle_overlay_verdicts_total",
            "External pairwise verdicts accepted over POST /adjudicate.",
        );
        let overlay_version = registry.gauge(
            "adalsh_oracle_overlay_version",
            "Version of the external-verdict overlay (bumps per verdict).",
        );
        let hash_evals = registry.counter(
            "adalsh_hash_evals_total",
            "Elementary hash evaluations across all resolve passes.",
        );
        let pairwise_evals = registry.counter(
            "adalsh_pairwise_evals_total",
            "Record-pair comparisons across all resolve passes.",
        );
        let engine = Arc::new(EngineMetrics::register(&registry));
        let pipeline = PipelineMetrics::register(&registry, hash_evals, pairwise_evals);
        Self {
            registry,
            requests,
            latency,
            ingested_records,
            overlay_verdicts,
            overlay_version,
            engine,
            pipeline,
        }
    }

    /// Records one finished request: its endpoint label (the matched
    /// path, or `"unmatched"`), response status, and wall latency.
    pub fn observe_request(&self, endpoint: &str, status: u16, latency: Duration) {
        self.requests.inc(&[endpoint, &status.to_string()]);
        self.latency.observe(latency.as_secs_f64());
    }

    /// Adds newly ingested records to the intake counter.
    pub fn observe_ingest(&self, records: usize) {
        self.ingested_records.add(records as u64);
    }

    /// Records one accepted `/adjudicate` request: the number of
    /// verdicts applied and the overlay version they produced.
    pub fn observe_adjudication(&self, verdicts: usize, overlay_version: u64) {
        self.overlay_verdicts.add(verdicts as u64);
        self.overlay_version.set(overlay_version);
    }

    /// The pipeline's handle bundle (cheap clone — every member is
    /// atomics behind an `Arc`).
    pub fn pipeline(&self) -> PipelineMetrics {
        self.pipeline.clone()
    }

    /// The trace subscriber feeding the `adalsh_engine_*` families.
    /// Install it on the resolver's sink (composed via
    /// [`adalsh_obs::TraceSink::with`] so a caller-installed JSONL
    /// writer keeps receiving events too).
    pub fn engine_subscriber(&self) -> Arc<dyn Subscriber> {
        self.engine.clone()
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics").finish_non_exhaustive()
    }
}

/// Handles for the ingest-pipeline families, passed into the pipeline
/// so the resolver thread and the intake path can record without going
/// through [`Metrics`].
#[derive(Clone)]
pub struct PipelineMetrics {
    /// `adalsh_ingest_queue_depth` — batches waiting in the intake queue.
    pub queue_depth: Gauge,
    /// `adalsh_published_epoch` — epoch of the published snapshot.
    pub published_epoch: Gauge,
    /// `adalsh_resolve_batch_records` — records coalesced per resolve pass.
    pub batch_records: Histogram,
    /// `adalsh_publish_seconds` — pop-to-publish wall time of one pass.
    pub publish_seconds: Histogram,
    /// `adalsh_ingest_to_visible_seconds` — accept-to-publish wall time
    /// of an ingest batch (the root `ingest_batch` span's duration).
    pub ingest_to_visible: Histogram,
    /// `adalsh_queue_age_seconds` — queue wait of the most recently
    /// dequeued ingest batch (how stale the intake queue runs).
    pub queue_age: GaugeF64,
    /// `adalsh_resolve_minor_page_faults_total` — minor page faults
    /// charged to resolve passes (mmap-tier paging attribution).
    pub resolve_minor_faults: Counter,
    /// `adalsh_resolve_major_page_faults_total` — likewise, major.
    pub resolve_major_faults: Counter,
    /// `adalsh_applied_batches_total` — accepted batches applied.
    pub applied_batches: Counter,
    /// `adalsh_rejected_batches_total` — batches shed with 503.
    pub rejected_batches: Counter,
    /// `adalsh_hash_evals_total` — cumulative over resolve passes
    /// (shared with the [`Metrics`] family of the same name).
    pub hash_evals: Counter,
    /// `adalsh_pairwise_evals_total` — likewise.
    pub pairwise_evals: Counter,
}

impl PipelineMetrics {
    /// Registers the pipeline families on `registry`. The engine-eval
    /// totals are handles to families `Metrics` already registered.
    fn register(registry: &Registry, hash_evals: Counter, pairwise_evals: Counter) -> Self {
        Self {
            hash_evals,
            pairwise_evals,
            queue_depth: registry.gauge(
                "adalsh_ingest_queue_depth",
                "Ingest batches currently waiting in the bounded intake queue.",
            ),
            published_epoch: registry.gauge(
                "adalsh_published_epoch",
                "Epoch (applied ingest batches) of the published snapshot.",
            ),
            batch_records: registry.histogram(
                "adalsh_resolve_batch_records",
                "Records coalesced into one resolve pass by the resolver thread.",
                &BATCH_BUCKETS_RECORDS,
            ),
            publish_seconds: registry.histogram(
                "adalsh_publish_seconds",
                "Wall time from popping a batch to publishing its snapshot.",
                &PIPELINE_BUCKETS_SECS,
            ),
            ingest_to_visible: registry.histogram(
                "adalsh_ingest_to_visible_seconds",
                "Wall time from accepting an ingest batch to publishing the snapshot \
                 that makes it visible.",
                &PIPELINE_BUCKETS_SECS,
            ),
            queue_age: registry.gauge_f64(
                "adalsh_queue_age_seconds",
                "Queue wait, in seconds, of the most recently dequeued ingest batch.",
            ),
            resolve_minor_faults: registry.counter(
                "adalsh_resolve_minor_page_faults_total",
                "Minor page faults incurred during resolve passes.",
            ),
            resolve_major_faults: registry.counter(
                "adalsh_resolve_major_page_faults_total",
                "Major page faults incurred during resolve passes (mmap-tier reads).",
            ),
            applied_batches: registry.counter(
                "adalsh_applied_batches_total",
                "Accepted ingest batches applied by the resolver thread.",
            ),
            rejected_batches: registry.counter(
                "adalsh_rejected_batches_total",
                "Ingest batches shed with 503 because the intake queue was full.",
            ),
        }
    }
}

impl std::fmt::Debug for PipelineMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineMetrics").finish_non_exhaustive()
    }
}

/// Folds engine trace events into Prometheus families. Lives on the
/// resolver's [`adalsh_obs::TraceSink`]; events it does not chart
/// (run bounds, finals, online-query summaries) pass through untouched.
pub struct EngineMetrics {
    hash_round_seconds: Histogram,
    pairwise_block_seconds: Histogram,
    gate_decisions: LabeledCounter,
    oracle_calls: Counter,
    oracle_attempts: Counter,
    oracle_retries: Counter,
    oracle_timeouts: Counter,
    oracle_errors: Counter,
    oracle_degraded: Counter,
    oracle_spend: Counter,
    oracle_verdicts: LabeledCounter,
}

impl EngineMetrics {
    /// Registers the engine families on `registry`.
    fn register(registry: &Registry) -> Self {
        Self {
            hash_round_seconds: registry.histogram(
                "adalsh_engine_hash_round_seconds",
                "Wall time of one transitive hashing round (one H_t application).",
                &ENGINE_BUCKETS_SECS,
            ),
            pairwise_block_seconds: registry.histogram(
                "adalsh_engine_pairwise_block_seconds",
                "Wall time of one pairwise wavefront block.",
                &ENGINE_BUCKETS_SECS,
            ),
            gate_decisions: registry.labeled_counter(
                "adalsh_engine_gate_decisions_total",
                "Line-5 jump-gate decisions, by chosen action.",
                &["action"],
            ),
            oracle_calls: registry.counter(
                "adalsh_oracle_calls_total",
                "Settled pairwise-oracle adjudications.",
            ),
            oracle_attempts: registry.counter(
                "adalsh_oracle_attempts_total",
                "Oracle attempts, including retries and vote slots.",
            ),
            oracle_retries: registry.counter(
                "adalsh_oracle_retries_total",
                "Oracle attempts retried after a timeout or transient error.",
            ),
            oracle_timeouts: registry.counter(
                "adalsh_oracle_timeouts_total",
                "Oracle attempts reaped by the per-attempt timeout.",
            ),
            oracle_errors: registry.counter(
                "adalsh_oracle_errors_total",
                "Oracle attempts failed with a transient error.",
            ),
            oracle_degraded: registry.counter(
                "adalsh_oracle_degraded_total",
                "Adjudications degraded to the cheap rule (budget or deadline).",
            ),
            oracle_spend: registry.counter(
                "adalsh_oracle_spend_total",
                "Budget units charged by settled adjudications.",
            ),
            oracle_verdicts: registry.labeled_counter(
                "adalsh_oracle_verdicts_total",
                "Settled oracle verdicts, by outcome.",
                &["verdict"],
            ),
        }
    }
}

impl Subscriber for EngineMetrics {
    fn event(&self, event: &Event<'_>) {
        match event.name {
            "hash_round" => {
                if let Some(micros) = event.u64("wall_micros") {
                    self.hash_round_seconds.observe(micros as f64 / 1e6);
                }
            }
            "pairwise_block" => {
                if let Some(micros) = event.u64("wall_micros") {
                    self.pairwise_block_seconds.observe(micros as f64 / 1e6);
                }
            }
            "gate" => {
                if let Some(action) = event.str("action") {
                    self.gate_decisions.inc(&[action]);
                }
            }
            "oracle_call" => {
                let u = |name: &str| event.u64(name).unwrap_or(0);
                self.oracle_calls.inc();
                self.oracle_attempts.add(u("attempts"));
                self.oracle_retries.add(u("retries"));
                self.oracle_timeouts.add(u("timeouts"));
                self.oracle_errors.add(u("errors"));
                self.oracle_degraded.add(u("degraded"));
                self.oracle_spend.add(u("spend"));
                let verdict = if u("matched") == 1 {
                    "match"
                } else {
                    "non-match"
                };
                self.oracle_verdicts.inc(&[verdict]);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_obs::{promtext, TraceSink, Value};

    #[test]
    fn render_contains_all_families() {
        let m = Metrics::new();
        m.observe_request("/topk", 200, Duration::from_millis(3));
        m.observe_request("/topk", 200, Duration::from_millis(40));
        m.observe_request("/ingest", 400, Duration::from_micros(200));
        m.observe_ingest(7);
        let p = m.pipeline();
        p.hash_evals.add(11);
        p.pairwise_evals.add(5);

        let text = m.render();
        assert!(text.contains("adalsh_requests_total{endpoint=\"/topk\",status=\"200\"} 2"));
        assert!(text.contains("adalsh_requests_total{endpoint=\"/ingest\",status=\"400\"} 1"));
        assert!(text.contains("adalsh_request_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("adalsh_request_seconds_count 3"));
        assert!(text.contains("adalsh_ingested_records_total 7"));
        assert!(text.contains("adalsh_hash_evals_total 11"));
        assert!(text.contains("adalsh_pairwise_evals_total 5"));
        // Engine families are pre-registered even before any query.
        assert!(text.contains("adalsh_engine_hash_round_seconds_count 0"));
        assert!(text.contains("adalsh_engine_pairwise_block_seconds_count 0"));
        // Pipeline families likewise exist before the first batch.
        assert!(text.contains("adalsh_ingest_queue_depth 0"));
        assert!(text.contains("adalsh_published_epoch 0"));
        assert!(text.contains("adalsh_resolve_batch_records_count 0"));
        assert!(text.contains("adalsh_publish_seconds_count 0"));
        assert!(text.contains("adalsh_applied_batches_total 0"));
        assert!(text.contains("adalsh_rejected_batches_total 0"));
    }

    #[test]
    fn pipeline_handles_feed_the_shared_registry() {
        let m = Metrics::new();
        let p = m.pipeline();
        p.queue_depth.inc();
        p.queue_depth.inc();
        p.queue_depth.dec();
        p.published_epoch.set(17);
        p.batch_records.observe(96.0);
        p.publish_seconds.observe(0.012);
        p.applied_batches.add(3);
        p.rejected_batches.inc();

        let text = m.render();
        assert!(text.contains("adalsh_ingest_queue_depth 1"), "{text}");
        assert!(text.contains("adalsh_published_epoch 17"), "{text}");
        assert!(
            text.contains("adalsh_resolve_batch_records_count 1"),
            "{text}"
        );
        assert!(text.contains("adalsh_applied_batches_total 3"), "{text}");
        assert!(text.contains("adalsh_rejected_batches_total 1"), "{text}");
        assert!(
            text.contains("# TYPE adalsh_ingest_queue_depth gauge"),
            "{text}"
        );
        let samples = promtext::parse(&text).unwrap();
        promtext::check_histogram(&samples, "adalsh_resolve_batch_records").unwrap();
        promtext::check_histogram(&samples, "adalsh_publish_seconds").unwrap();
    }

    /// Satellite audit: every bucket table is strictly increasing and
    /// covers the ranges the system actually produces — sub-millisecond
    /// health checks at the bottom, scale-tier resolve passes (10⁶
    /// records, tens of seconds) at the top — so load does not collapse
    /// into the `+Inf` bucket.
    #[test]
    #[allow(clippy::assertions_on_constants)] // the table *is* the test subject
    fn bucket_tables_are_increasing_and_cover_observed_ranges() {
        for (name, table) in [
            ("latency", &LATENCY_BUCKETS_SECS[..]),
            ("pipeline", &PIPELINE_BUCKETS_SECS[..]),
            ("engine", &ENGINE_BUCKETS_SECS[..]),
            ("batch", &BATCH_BUCKETS_RECORDS[..]),
        ] {
            assert!(
                table.windows(2).all(|w| w[0] < w[1]),
                "{name} buckets must be strictly increasing: {table:?}"
            );
            assert!(
                table.iter().all(|b| b.is_finite() && *b > 0.0),
                "{name} buckets must be finite and positive: {table:?}"
            );
        }
        // Request latencies: sub-millisecond health checks resolve below
        // the bottom bucket's neighborhood; multi-second cold queries fit
        // under the top finite bucket.
        assert!(LATENCY_BUCKETS_SECS[0] <= 0.001);
        assert!(*LATENCY_BUCKETS_SECS.last().unwrap() >= 10.0);
        // Pipeline passes: a scale-tier coalesced resolve can run tens of
        // seconds — the old 10s ceiling saturated there.
        assert!(*PIPELINE_BUCKETS_SECS.last().unwrap() >= 60.0);
        // Engine rounds span microseconds to seconds.
        assert!(ENGINE_BUCKETS_SECS[0] <= 1e-5);
        assert!(*ENGINE_BUCKETS_SECS.last().unwrap() >= 1.0);
        // Batch sizes: a single record at the bottom; scale-tier passes
        // coalesce into the 10⁴–10⁵ range, inside the finite buckets.
        assert_eq!(BATCH_BUCKETS_RECORDS[0], 1.0);
        assert!(*BATCH_BUCKETS_RECORDS.last().unwrap() >= 100_000.0);
    }

    #[test]
    fn pipeline_families_include_span_backed_metrics() {
        let m = Metrics::new();
        let p = m.pipeline();
        p.ingest_to_visible.observe(0.25);
        p.queue_age.set(0.75);
        p.resolve_minor_faults.add(12);
        p.resolve_major_faults.add(3);
        let text = m.render();
        assert!(
            text.contains("adalsh_ingest_to_visible_seconds_count 1"),
            "{text}"
        );
        assert!(text.contains("adalsh_queue_age_seconds 0.75"), "{text}");
        assert!(
            text.contains("adalsh_resolve_minor_page_faults_total 12"),
            "{text}"
        );
        assert!(
            text.contains("adalsh_resolve_major_page_faults_total 3"),
            "{text}"
        );
        let samples = promtext::parse(&text).unwrap();
        promtext::check_histogram(&samples, "adalsh_ingest_to_visible_seconds").unwrap();
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.observe_request("/healthz", 200, Duration::from_micros(500));
        let text = m.render();
        // A 0.5ms request lands in every bucket from le="0.001" upward.
        assert!(text.contains("adalsh_request_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("adalsh_request_seconds_bucket{le=\"10\"} 1"));
    }

    /// The seed implementation truncated `_sum` to whole microseconds
    /// and double-counted nothing into `+Inf`; the parser-backed checks
    /// pin the correct semantics: `+Inf == _count`, buckets cumulative
    /// and nondecreasing, `_sum` an exact f64 total.
    #[test]
    fn latency_histogram_has_valid_prometheus_semantics() {
        let m = Metrics::new();
        m.observe_request("/topk", 200, Duration::from_secs_f64(0.0000007));
        m.observe_request("/topk", 200, Duration::from_secs_f64(0.0123));
        m.observe_request("/topk", 200, Duration::from_secs_f64(99.0));

        let samples = promtext::parse(&m.render()).expect("exposition parses");
        promtext::check_histogram(&samples, "adalsh_request_seconds").expect("valid histogram");

        let sum = samples
            .iter()
            .find(|s| s.name == "adalsh_request_seconds_sum")
            .unwrap()
            .value;
        // Sub-microsecond latencies survive: the sum is not truncated to
        // whole micros (0.0000007 would truncate to 0).
        assert!(
            (sum - (0.0000007 + 0.0123 + 99.0)).abs() < 1e-9,
            "exact f64 sum, got {sum}"
        );
        let inf = samples
            .iter()
            .find(|s| s.name == "adalsh_request_seconds_bucket" && s.label("le") == Some("+Inf"))
            .unwrap()
            .value;
        assert_eq!(inf as u64, 3, "+Inf bucket counts every observation");
    }

    #[test]
    fn oracle_families_fold_oracle_call_events() {
        let m = Metrics::new();
        // Pre-registered before any noisy run.
        let before = m.render();
        assert!(before.contains("adalsh_oracle_calls_total 0"), "{before}");
        assert!(
            before.contains("adalsh_oracle_overlay_verdicts_total 0"),
            "{before}"
        );

        let sink = TraceSink::new(m.engine_subscriber());
        sink.emit(
            "oracle_call",
            &[
                ("attempts", Value::U64(3)),
                ("retries", Value::U64(2)),
                ("votes", Value::U64(0)),
                ("timeouts", Value::U64(1)),
                ("errors", Value::U64(1)),
                ("spend", Value::U64(3)),
                ("degraded", Value::U64(0)),
                ("matched", Value::U64(1)),
                ("latency_micros", Value::U64(500)),
            ],
        );
        sink.emit(
            "oracle_call",
            &[
                ("attempts", Value::U64(1)),
                ("retries", Value::U64(0)),
                ("votes", Value::U64(0)),
                ("timeouts", Value::U64(0)),
                ("errors", Value::U64(0)),
                ("spend", Value::U64(0)),
                ("degraded", Value::U64(1)),
                ("matched", Value::U64(0)),
                ("latency_micros", Value::U64(0)),
            ],
        );
        m.observe_adjudication(2, 2);

        let text = m.render();
        assert!(text.contains("adalsh_oracle_calls_total 2"), "{text}");
        assert!(text.contains("adalsh_oracle_attempts_total 4"), "{text}");
        assert!(text.contains("adalsh_oracle_retries_total 2"), "{text}");
        assert!(text.contains("adalsh_oracle_timeouts_total 1"), "{text}");
        assert!(text.contains("adalsh_oracle_errors_total 1"), "{text}");
        assert!(text.contains("adalsh_oracle_degraded_total 1"), "{text}");
        assert!(text.contains("adalsh_oracle_spend_total 3"), "{text}");
        assert!(
            text.contains("adalsh_oracle_verdicts_total{verdict=\"match\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("adalsh_oracle_verdicts_total{verdict=\"non-match\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("adalsh_oracle_overlay_verdicts_total 2"),
            "{text}"
        );
        assert!(text.contains("adalsh_oracle_overlay_version 2"), "{text}");
    }

    #[test]
    fn engine_subscriber_folds_trace_events() {
        let m = Metrics::new();
        let sink = TraceSink::new(m.engine_subscriber());
        sink.emit(
            "hash_round",
            &[("level", Value::U64(1)), ("wall_micros", Value::U64(1500))],
        );
        sink.emit("pairwise_block", &[("wall_micros", Value::U64(80))]);
        sink.emit("pairwise_block", &[("wall_micros", Value::U64(120))]);
        sink.emit("gate", &[("action", Value::Str("pairwise"))]);
        sink.emit("gate", &[("action", Value::Str("pairwise"))]);
        sink.emit("gate", &[("action", Value::Str("hash"))]);
        sink.emit("final_cluster", &[("rank", Value::U64(0))]); // ignored

        let text = m.render();
        assert!(
            text.contains("adalsh_engine_hash_round_seconds_count 1"),
            "{text}"
        );
        assert!(
            text.contains("adalsh_engine_pairwise_block_seconds_count 2"),
            "{text}"
        );
        assert!(text.contains("adalsh_engine_gate_decisions_total{action=\"pairwise\"} 2"));
        assert!(text.contains("adalsh_engine_gate_decisions_total{action=\"hash\"} 1"));
        let samples = promtext::parse(&text).unwrap();
        promtext::check_histogram(&samples, "adalsh_engine_hash_round_seconds").unwrap();
        promtext::check_histogram(&samples, "adalsh_engine_pairwise_block_seconds").unwrap();
    }
}
