//! Service metrics with Prometheus text exposition.
//!
//! The registry is lock-light: scalar counters are atomics, and the only
//! mutex guards the small per-`(endpoint, status)` request-count map. A
//! scrape renders the standard text format (`# HELP`/`# TYPE` preamble,
//! one sample per line) without touching the resolver lock, so
//! `/metrics` stays responsive while a long query holds the engine.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use adalsh_core::Stats;

/// Upper bounds (seconds) of the request-latency histogram buckets; a
/// final `+Inf` bucket is implicit. Spans sub-millisecond health checks
/// to multi-second cold queries.
pub const LATENCY_BUCKETS_SECS: [f64; 8] = [0.001, 0.005, 0.025, 0.1, 0.25, 1.0, 2.5, 10.0];

/// All counters exported on `/metrics`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests by `(endpoint, status)`.
    requests: Mutex<BTreeMap<(String, u16), u64>>,
    /// Cumulative request-latency histogram: one counter per bucket in
    /// [`LATENCY_BUCKETS_SECS`], plus `+Inf` at the end.
    latency_buckets: [AtomicU64; LATENCY_BUCKETS_SECS.len() + 1],
    latency_sum_micros: AtomicU64,
    latency_count: AtomicU64,
    /// Records accepted by `/ingest` since startup (resumed records are
    /// not counted: this meters service work, not corpus size).
    ingested_records: AtomicU64,
    /// Cumulative engine counters accumulated over all queries.
    hash_evals: AtomicU64,
    pairwise_evals: AtomicU64,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one finished request: its endpoint label (the matched
    /// path, or `"unmatched"`), response status, and wall latency.
    pub fn observe_request(&self, endpoint: &str, status: u16, latency: Duration) {
        {
            let mut map = lock_unpoisoned(&self.requests);
            *map.entry((endpoint.to_string(), status)).or_insert(0) += 1;
        }
        let secs = latency.as_secs_f64();
        for (i, bound) in LATENCY_BUCKETS_SECS.iter().enumerate() {
            if secs <= *bound {
                self.latency_buckets[i].fetch_add(1, Ordering::Relaxed);
            }
        }
        self.latency_buckets[LATENCY_BUCKETS_SECS.len()].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_micros
            .fetch_add(latency.as_micros() as u64, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds newly ingested records to the intake counter.
    pub fn observe_ingest(&self, records: usize) {
        self.ingested_records
            .fetch_add(records as u64, Ordering::Relaxed);
    }

    /// Folds one query's engine counters into the cumulative totals.
    pub fn observe_query_stats(&self, stats: &Stats) {
        self.hash_evals
            .fetch_add(stats.hash_evals, Ordering::Relaxed);
        self.pairwise_evals
            .fetch_add(stats.pair_comparisons, Ordering::Relaxed);
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);

        out.push_str("# HELP adalsh_requests_total Requests served, by endpoint and status.\n");
        out.push_str("# TYPE adalsh_requests_total counter\n");
        for ((endpoint, status), count) in lock_unpoisoned(&self.requests).iter() {
            out.push_str(&format!(
                "adalsh_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {count}\n"
            ));
        }

        out.push_str("# HELP adalsh_request_seconds Request wall latency.\n");
        out.push_str("# TYPE adalsh_request_seconds histogram\n");
        for (i, bound) in LATENCY_BUCKETS_SECS.iter().enumerate() {
            let v = self.latency_buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "adalsh_request_seconds_bucket{{le=\"{bound}\"}} {v}\n"
            ));
        }
        let inf = self.latency_buckets[LATENCY_BUCKETS_SECS.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "adalsh_request_seconds_bucket{{le=\"+Inf\"}} {inf}\n"
        ));
        let sum = self.latency_sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
        out.push_str(&format!("adalsh_request_seconds_sum {sum}\n"));
        out.push_str(&format!(
            "adalsh_request_seconds_count {}\n",
            self.latency_count.load(Ordering::Relaxed)
        ));

        for (name, help, value) in [
            (
                "adalsh_ingested_records_total",
                "Records accepted over /ingest since startup.",
                self.ingested_records.load(Ordering::Relaxed),
            ),
            (
                "adalsh_hash_evals_total",
                "Elementary hash evaluations across all queries.",
                self.hash_evals.load(Ordering::Relaxed),
            ),
            (
                "adalsh_pairwise_evals_total",
                "Record-pair comparisons across all queries.",
                self.pairwise_evals.load(Ordering::Relaxed),
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }
        out
    }
}

/// Locks a mutex, recovering the data from a poisoned lock (metrics must
/// survive a panicking worker).
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_families() {
        let m = Metrics::new();
        m.observe_request("/topk", 200, Duration::from_millis(3));
        m.observe_request("/topk", 200, Duration::from_millis(40));
        m.observe_request("/ingest", 400, Duration::from_micros(200));
        m.observe_ingest(7);
        m.observe_query_stats(&Stats {
            hash_evals: 11,
            pair_comparisons: 5,
            ..Stats::default()
        });

        let text = m.render();
        assert!(text.contains("adalsh_requests_total{endpoint=\"/topk\",status=\"200\"} 2"));
        assert!(text.contains("adalsh_requests_total{endpoint=\"/ingest\",status=\"400\"} 1"));
        assert!(text.contains("adalsh_request_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("adalsh_request_seconds_count 3"));
        assert!(text.contains("adalsh_ingested_records_total 7"));
        assert!(text.contains("adalsh_hash_evals_total 11"));
        assert!(text.contains("adalsh_pairwise_evals_total 5"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.observe_request("/healthz", 200, Duration::from_micros(500));
        let text = m.render();
        // A 0.5ms request lands in every bucket from le="0.001" upward.
        assert!(text.contains("adalsh_request_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("adalsh_request_seconds_bucket{le=\"10\"} 1"));
    }
}
