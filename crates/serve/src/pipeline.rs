//! The read/write-split ingest pipeline: bounded intake queue, one
//! resolver thread, epoch-published snapshots.
//!
//! ```text
//!                    write path                      read path
//!   POST /ingest ──▶ validate ──▶ ┌──────────────┐
//!                    (schema,     │ bounded MPSC │   GET /topk ────┐
//!                     reserve ids │ queue        │   GET /healthz ─┤ Arc clone,
//!                     + epoch)    │ (cap = Q)    │   GET /metrics ─┘ no locks
//!                         503 ◀── └──────┬───────┘        ▲
//!                    + Retry-After       │ drain ≤ B      │ publish
//!                                 ┌──────▼───────┐  ┌─────┴──────────────┐
//!                                 │ resolver     │  │ Arc<ResolvedSnap-  │
//!                                 │ thread       ├─▶│ shot> (epoch, recs,│
//!                                 │ (OnlineAda-  │  │ clusters, Stats)   │
//!                                 │  Lsh owner)  │  └────────────────────┘
//!                                 └──────────────┘
//! ```
//!
//! **Write path.** `submit` validates every record against the schema,
//! then — under a small *intake* mutex that only writers touch —
//! reserves the batch's record ids and its **epoch** (the 1-based count
//! of accepted batches) and pushes a command into a bounded
//! [`sync_channel`]. A full queue rejects the batch *before* anything
//! was reserved, so an overloaded caller can retry the identical
//! request. The intake mutex linearizes (reserve, enqueue): batches
//! land in the queue in epoch order, which is also id order.
//!
//! **Resolver thread.** The single drainer owns the [`OnlineAdaLsh`].
//! It pops the next command, opportunistically coalesces further queued
//! ingest batches up to `max_batch` records (adaptive batching: an idle
//! server resolves per batch for freshness, a backlogged one amortizes
//! one resolve pass over many batches), applies them, resolves top
//! `resolve_k`, and publishes an immutable [`ResolvedSnapshot`] through
//! the lock-free slot in [`crate::publish`]. Snapshot commands execute
//! between batches, so a persisted snapshot always corresponds exactly
//! to a published epoch.
//!
//! **Read path.** Readers clone the published `Arc` — no mutex, no
//! contact with the resolver. Read-your-writes is opt-in: `wait_until`
//! parks on a condvar until the published epoch / record count reaches
//! a floor (the condvar pair is touched only by barrier waiters and the
//! resolver's publish step, never by plain reads).
//!
//! **Epoch/answer semantics.** Epoch `E` means "the first `E` accepted
//! batches are applied". The published clusters are resolved at
//! `resolve_k`; because the engine and the Pairs baseline share one
//! canonical cluster order (size-descending, then smallest-id), the
//! first `N ≤ resolve_k` published clusters are exactly the top-`N`
//! answer, so `/topk?k=N` serves a prefix. Published `Stats` are those
//! of the resolve pass that produced the answer (a resume with fully
//! persisted hash states legitimately publishes `hash_evals == 0`).

use std::path::PathBuf;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use adalsh_core::{OnlineAdaLsh, OracleSpend, Stats};
use adalsh_data::{MatchRule, Record, Schema};
use adalsh_obs::{ProcSample, SpanCollector, Spans, TraceSink, Value};

use crate::metrics::PipelineMetrics;
use crate::publish::{published, Publisher, ReadHandle};
use crate::snapshot::ServeSnapshot;

/// Tunables for the ingest pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Capacity of the bounded ingest queue, in batches. A full queue
    /// answers `503` + `Retry-After` instead of growing memory.
    pub queue_cap: usize,
    /// Most records one resolve pass will coalesce from consecutive
    /// queued batches.
    pub max_batch: usize,
    /// The `k` the resolver thread resolves at; `/topk?k=N` serves the
    /// first `N ≤ resolve_k` published clusters.
    pub resolve_k: usize,
    /// Longest a `wait_epoch=` / `min_records=` barrier read parks
    /// before giving up.
    pub barrier_timeout: Duration,
    /// Root spans at or above this many milliseconds are logged to
    /// stderr (`--slow-ms`; 0 disables the slow-op log).
    pub slow_ms: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            queue_cap: 64,
            max_batch: 2048,
            resolve_k: 10,
            barrier_timeout: Duration::from_secs(10),
            slow_ms: 0,
        }
    }
}

/// One immutable published resolution state. Readers clone the `Arc`
/// around this; nothing in here is ever mutated after publish.
#[derive(Debug, Clone)]
pub struct ResolvedSnapshot {
    /// Number of accepted ingest batches applied (0 = bootstrap only).
    pub epoch: u64,
    /// Records resolved into this snapshot.
    pub records: usize,
    /// The `k` this snapshot was resolved at.
    pub resolve_k: usize,
    /// Top-`resolve_k` clusters in canonical order (size-descending,
    /// ties by smallest member id).
    pub clusters: Vec<Vec<u32>>,
    /// Counters of the resolve pass that produced `clusters`.
    pub stats: Stats,
    /// Oracle-ledger totals of that resolve pass (noisy oracle only):
    /// spend, retries, and the degraded pairs awaiting external
    /// adjudication over `POST /adjudicate`.
    pub oracle: Option<OracleSpend>,
    /// Wall time of that resolve pass.
    pub resolve_wall: Duration,
}

/// What `submit` hands back for an accepted batch.
#[derive(Debug)]
pub struct Accepted {
    /// Ids the batch's records will occupy, in order.
    pub ids: Vec<u32>,
    /// The epoch at which the batch becomes visible: once the published
    /// epoch reaches this value, every read sees these records.
    pub visible_epoch: u64,
}

/// Why a batch was not accepted.
#[derive(Debug)]
pub enum SubmitError {
    /// A record failed schema validation (batch atomically rejected).
    Invalid(String),
    /// The ingest queue is full; retry after the hinted delay.
    Overloaded {
        /// Suggested `Retry-After`, in seconds.
        retry_after_secs: u64,
    },
    /// The pipeline is shutting down.
    ShuttingDown,
}

/// Result of a drained snapshot command.
#[derive(Debug)]
pub struct SnapshotDone {
    /// Epoch the persisted state corresponds to.
    pub epoch: u64,
    /// Records persisted.
    pub records: usize,
}

enum Command {
    Ingest {
        records: Vec<Record>,
        epoch: u64,
        /// Truncated-micros stamp (on the pipeline's [`Spans`] origin)
        /// taken at `submit` — the root `ingest_batch` span starts
        /// here, so queue wait is part of ingest-to-visible latency.
        enqueued_micros: u64,
    },
    Snapshot {
        reply: SyncSender<Result<SnapshotDone, String>>,
    },
    /// Re-resolve and re-publish at the current epoch — issued after
    /// `POST /adjudicate` lands external verdicts so they become
    /// visible without waiting for the next ingest.
    Reresolve {
        reply: SyncSender<Arc<ResolvedSnapshot>>,
    },
}

/// Writer-side state; only `submit`/`snapshot` lock this, never reads.
struct Intake {
    sender: Option<SyncSender<Command>>,
    next_id: u32,
    next_epoch: u64,
}

/// Publish watermark for read-your-writes barriers. Touched only by
/// the resolver's publish step and by waiting readers.
struct BarrierState {
    epoch: u64,
    records: u64,
}

/// The assembled pipeline: intake queue + resolver thread + published
/// snapshot slot. Dropping it drains the queue and joins the resolver.
pub struct Pipeline {
    intake: Mutex<Intake>,
    reader: ReadHandle<ResolvedSnapshot>,
    barrier: Arc<(Mutex<BarrierState>, Condvar)>,
    schema: Schema,
    config: PipelineConfig,
    metrics: PipelineMetrics,
    spans: Arc<Spans>,
    snapshot_enabled: bool,
    drainer: Option<JoinHandle<()>>,
}

impl Pipeline {
    /// Takes ownership of the resolver, publishes the boot snapshot
    /// **synchronously** (the server answers `/topk` correctly before
    /// the first ingest), and spawns the resolver thread.
    ///
    /// When `spans` is enabled, every ingest pass gets a root
    /// `ingest_batch` span with `queue_wait` / `coalesce` / `resolve`
    /// (plus engine-derived `hash_rounds` / `pairwise` children) /
    /// `publish` child spans, emitted through the resolver's trace
    /// sink. A [`SpanCollector`] is composed onto that sink **before**
    /// the boot resolve so its 1-based segment numbering lines up with
    /// the trace file's segment count.
    pub fn start(
        mut resolver: OnlineAdaLsh,
        rule: MatchRule,
        snapshot_path: Option<PathBuf>,
        config: PipelineConfig,
        metrics: PipelineMetrics,
        spans: Arc<Spans>,
    ) -> Self {
        let schema = resolver.schema().clone();
        let snapshot_enabled = snapshot_path.is_some();
        let resolve_k = config.resolve_k.max(1);

        let collector = if spans.enabled() {
            let collector = Arc::new(SpanCollector::new());
            let composed = resolver.trace().with(collector.clone());
            resolver.set_trace(composed);
            Some(collector)
        } else {
            None
        };

        // Boot resolve: epoch 0 covers everything the resolver was
        // constructed (or resumed) with.
        let boot_wall = Instant::now();
        let output = resolver.query_cached(resolve_k);
        // The boot segment belongs to no ingest batch — consume it so
        // the first batch's spans don't adopt stale attribution.
        if let Some(collector) = &collector {
            let _ = collector.take_last_segment();
        }
        metrics.hash_evals.add(output.stats.hash_evals);
        metrics.pairwise_evals.add(output.stats.pair_comparisons);
        let boot = Arc::new(ResolvedSnapshot {
            epoch: 0,
            records: resolver.len(),
            resolve_k,
            clusters: output.clusters,
            stats: output.stats,
            oracle: output.oracle,
            resolve_wall: output.wall,
        });
        metrics
            .publish_seconds
            .observe(boot_wall.elapsed().as_secs_f64());
        metrics.published_epoch.set(0);

        let (publisher, reader) = published(Arc::clone(&boot));
        let (sender, receiver) = sync_channel::<Command>(config.queue_cap.max(1));
        let barrier = Arc::new((
            Mutex::new(BarrierState {
                epoch: 0,
                records: boot.records as u64,
            }),
            Condvar::new(),
        ));

        let drainer = {
            let barrier = Arc::clone(&barrier);
            let metrics = metrics.clone();
            let config = config.clone();
            let spans = Arc::clone(&spans);
            let sink = resolver.trace().clone();
            std::thread::Builder::new()
                .name("adalsh-resolver".to_string())
                .spawn(move || {
                    drainer_loop(
                        resolver,
                        rule,
                        snapshot_path,
                        &receiver,
                        publisher,
                        &barrier,
                        &config,
                        &metrics,
                        &SpanContext {
                            spans,
                            collector,
                            sink,
                        },
                    );
                })
                .expect("spawn resolver thread")
        };

        Self {
            intake: Mutex::new(Intake {
                sender: Some(sender),
                next_id: boot.records as u32,
                next_epoch: 1,
            }),
            reader,
            barrier,
            schema,
            config,
            metrics,
            spans,
            snapshot_enabled,
            drainer: Some(drainer),
        }
    }

    /// Whether a snapshot path was configured (the service rejects
    /// `POST /snapshot` early when it wasn't).
    pub fn snapshot_enabled(&self) -> bool {
        self.snapshot_enabled
    }

    /// The currently published snapshot — one lock-free `Arc` clone.
    pub fn current(&self) -> Arc<ResolvedSnapshot> {
        self.reader.load()
    }

    /// The `k` the resolver resolves at.
    pub fn resolve_k(&self) -> usize {
        self.config.resolve_k.max(1)
    }

    /// Validates and enqueues one ingest batch.
    ///
    /// # Errors
    /// [`SubmitError::Invalid`] on schema violation (nothing reserved),
    /// [`SubmitError::Overloaded`] when the queue is full (nothing
    /// reserved — the retry is idempotent), [`SubmitError::ShuttingDown`]
    /// after shutdown began.
    pub fn submit(&self, records: Vec<Record>) -> Result<Accepted, SubmitError> {
        for (i, record) in records.iter().enumerate() {
            self.schema
                .validate(record)
                .map_err(|e| SubmitError::Invalid(format!("record {i} of batch: {e}")))?;
        }
        let count = records.len() as u32;
        let enqueued_micros = if self.spans.enabled() {
            self.spans.now_micros()
        } else {
            0
        };

        let mut intake = lock_unpoisoned(&self.intake);
        let Some(sender) = intake.sender.as_ref() else {
            return Err(SubmitError::ShuttingDown);
        };
        let first_id = intake.next_id;
        let epoch = intake.next_epoch;
        // Gauge up *before* the command becomes visible: the drainer's
        // matching `dec` can only run after a successful send, so the
        // pair can never saturate at zero and leak a phantom unit.
        self.metrics.queue_depth.inc();
        match sender.try_send(Command::Ingest {
            records,
            epoch,
            enqueued_micros,
        }) {
            Ok(()) => {
                intake.next_id += count;
                intake.next_epoch += 1;
                Ok(Accepted {
                    ids: (first_id..first_id + count).collect(),
                    visible_epoch: epoch,
                })
            }
            Err(TrySendError::Full(_)) => {
                self.metrics.queue_depth.dec();
                self.metrics.rejected_batches.inc();
                Err(SubmitError::Overloaded {
                    retry_after_secs: 1,
                })
            }
            Err(TrySendError::Disconnected(_)) => {
                self.metrics.queue_depth.dec();
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// Asks the resolver thread to persist a snapshot at the next epoch
    /// boundary and waits for the result. Readers are never blocked;
    /// only this caller waits.
    ///
    /// # Errors
    /// Propagates capture/save failures; times out if the resolver is
    /// stuck behind an enormous backlog.
    pub fn snapshot(&self) -> Result<SnapshotDone, String> {
        let (reply, done) = sync_channel(1);
        {
            let intake = lock_unpoisoned(&self.intake);
            let Some(sender) = intake.sender.as_ref() else {
                return Err("pipeline is shutting down".to_string());
            };
            // A snapshot command must not consume ingest queue capacity
            // budgeting, but it does occupy a slot; block briefly rather
            // than failing, since snapshots are rare and small.
            self.metrics.queue_depth.inc();
            if sender.send(Command::Snapshot { reply }).is_err() {
                self.metrics.queue_depth.dec();
                return Err("pipeline is shutting down".to_string());
            }
        }
        match done.recv_timeout(Duration::from_secs(60)) {
            Ok(result) => result,
            Err(_) => Err("timed out waiting for the resolver to snapshot".to_string()),
        }
    }

    /// Asks the resolver thread to re-resolve and re-publish at the
    /// current epoch, returning the fresh snapshot. Used after external
    /// verdicts land: the resolver's overlay-versioned cache misses and
    /// the re-adjudicated answer becomes visible immediately.
    ///
    /// # Errors
    /// Fails when the pipeline is shutting down or the resolver is
    /// stuck behind an enormous backlog.
    pub fn reresolve(&self) -> Result<Arc<ResolvedSnapshot>, String> {
        let (reply, done) = sync_channel(1);
        {
            let intake = lock_unpoisoned(&self.intake);
            let Some(sender) = intake.sender.as_ref() else {
                return Err("pipeline is shutting down".to_string());
            };
            self.metrics.queue_depth.inc();
            if sender.send(Command::Reresolve { reply }).is_err() {
                self.metrics.queue_depth.dec();
                return Err("pipeline is shutting down".to_string());
            }
        }
        match done.recv_timeout(Duration::from_secs(60)) {
            Ok(snapshot) => Ok(snapshot),
            Err(_) => Err("timed out waiting for the resolver to re-resolve".to_string()),
        }
    }

    /// Blocks until the published snapshot satisfies `epoch ≥ min_epoch`
    /// and `records ≥ min_records`, or the barrier timeout elapses.
    /// Returns `true` when satisfied. Plain reads never enter here.
    pub fn wait_until(&self, min_epoch: u64, min_records: u64) -> bool {
        let deadline = Instant::now() + self.config.barrier_timeout;
        let (lock, condvar) = &*self.barrier;
        let mut state = lock_unpoisoned(lock);
        while state.epoch < min_epoch || state.records < min_records {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, timeout) = condvar
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = next;
            if timeout.timed_out() && (state.epoch < min_epoch || state.records < min_records) {
                return false;
            }
        }
        true
    }
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        // Closing the channel lets the resolver drain what's buffered
        // and exit; joining bounds test teardown.
        lock_unpoisoned(&self.intake).sender.take();
        if let Some(handle) = self.drainer.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// Span machinery the resolver thread carries: the recorder, the
/// per-segment engine-attribution collector (riding the resolver's
/// sink), and a clone of that sink to emit `"span"` events through.
struct SpanContext {
    spans: Arc<Spans>,
    collector: Option<Arc<SpanCollector>>,
    sink: TraceSink,
}

/// The resolver thread: pops commands in order, coalesces consecutive
/// ingest batches up to `max_batch` records, applies + resolves +
/// publishes, and executes snapshot commands at epoch boundaries.
/// Exits when the intake channel closes, after draining it.
#[allow(clippy::too_many_arguments)]
fn drainer_loop(
    mut resolver: OnlineAdaLsh,
    rule: MatchRule,
    snapshot_path: Option<PathBuf>,
    receiver: &Receiver<Command>,
    mut publisher: Publisher<ResolvedSnapshot>,
    barrier: &Arc<(Mutex<BarrierState>, Condvar)>,
    config: &PipelineConfig,
    metrics: &PipelineMetrics,
    span_ctx: &SpanContext,
) {
    let resolve_k = config.resolve_k.max(1);
    let max_batch = config.max_batch.max(1);
    // A command popped while coalescing that cannot join the current
    // pass (a snapshot, or records beyond max_batch) carries over.
    let mut carried: Option<Command> = None;

    loop {
        let command = match carried.take() {
            Some(c) => c,
            None => match receiver.recv() {
                Ok(c) => {
                    metrics.queue_depth.dec();
                    c
                }
                Err(_) => return, // channel closed and drained: shutdown
            },
        };

        match command {
            Command::Snapshot { reply } => {
                let result = match &snapshot_path {
                    None => Err(
                        "snapshotting is disabled: start the server with --snapshot-out <path>"
                            .to_string(),
                    ),
                    Some(path) => {
                        let snapshot = ServeSnapshot::capture(&resolver, rule.clone());
                        let records = snapshot.resolver.records.len();
                        snapshot.save(path).map(|()| SnapshotDone {
                            epoch: lock_unpoisoned(&barrier.0).epoch,
                            records,
                        })
                    }
                };
                let _ = reply.send(result);
            }
            Command::Reresolve { reply } => {
                let pass_start = Instant::now();
                let epoch = lock_unpoisoned(&barrier.0).epoch;
                let output = resolver.query_cached(resolve_k);
                // A re-resolve's segment belongs to no ingest span —
                // consume it so the next batch starts clean.
                if let Some(collector) = &span_ctx.collector {
                    let _ = collector.take_last_segment();
                }
                metrics.hash_evals.add(output.stats.hash_evals);
                metrics.pairwise_evals.add(output.stats.pair_comparisons);
                let snapshot = Arc::new(ResolvedSnapshot {
                    epoch,
                    records: resolver.len(),
                    resolve_k,
                    clusters: output.clusters,
                    stats: output.stats,
                    oracle: output.oracle,
                    resolve_wall: output.wall,
                });
                publisher.publish(Arc::clone(&snapshot));
                metrics
                    .publish_seconds
                    .observe(pass_start.elapsed().as_secs_f64());
                let _ = reply.send(snapshot);
            }
            Command::Ingest {
                records,
                epoch,
                enqueued_micros,
            } => {
                let pass_start = Instant::now();
                let spans = &span_ctx.spans;
                let sink = &span_ctx.sink;
                let tracing = spans.enabled();
                // The root span starts at the first batch's *enqueue*
                // stamp, so its duration is the full ingest-to-visible
                // latency; queue wait is the [enqueue, pop] prefix.
                let pop_stamp = if tracing { spans.now_micros() } else { 0 };
                let root = spans.begin_at("ingest_batch", 0, enqueued_micros);
                if tracing {
                    let wait = spans.begin_at("queue_wait", root.id, enqueued_micros);
                    spans.finish_at(wait, pop_stamp, &[], sink);
                    metrics
                        .queue_age
                        .set(pop_stamp.saturating_sub(enqueued_micros) as f64 / 1e6);
                }

                let mut batch = records;
                let mut last_epoch = epoch;
                let mut applied_batches = 1u64;
                // Coalesce whatever else is already queued, preserving
                // order, until the pass is full or a snapshot command
                // (an epoch boundary) shows up. Coalesced batches fold
                // into this pass's root span (their own enqueue stamps
                // are later than the root's, so the window still
                // contains their wait).
                while batch.len() < max_batch {
                    match receiver.try_recv() {
                        Ok(next) => {
                            metrics.queue_depth.dec();
                            match next {
                                Command::Ingest { records, epoch, .. } => {
                                    batch.extend(records);
                                    last_epoch = epoch;
                                    applied_batches += 1;
                                }
                                other => {
                                    // Snapshot / re-resolve commands mark an
                                    // epoch boundary: finish this pass first.
                                    carried = Some(other);
                                    break;
                                }
                            }
                        }
                        Err(_) => break,
                    }
                }
                if tracing {
                    let coalesce = spans.begin_at("coalesce", root.id, pop_stamp);
                    spans.finish(coalesce, &[("batches", Value::U64(applied_batches))], sink);
                }

                let batch_len = batch.len();
                let resolve_span = spans.begin("resolve", root.id);
                let proc_before = if tracing { ProcSample::capture() } else { None };
                resolver
                    .extend(batch)
                    .expect("batch pre-validated at intake");
                let output = resolver.query_cached(resolve_k);
                metrics.hash_evals.add(output.stats.hash_evals);
                metrics.pairwise_evals.add(output.stats.pair_comparisons);
                if tracing {
                    // Engine-derived children: durations are the exact
                    // per-segment Σ wall_micros the collector folded, so
                    // schema::validate reconciles them bit-for-bit with
                    // the hash_round/pairwise events of that segment.
                    if let Some(seg) = span_ctx
                        .collector
                        .as_ref()
                        .and_then(|c| c.take_last_segment())
                    {
                        let hash = spans.begin_at(
                            "hash_rounds",
                            resolve_span.id,
                            resolve_span.start_micros,
                        );
                        spans.record(
                            hash,
                            seg.hash_wall_micros,
                            &[
                                ("segment", Value::U64(seg.segment)),
                                ("hash_evals", Value::U64(seg.hash_evals)),
                            ],
                            sink,
                        );
                        let pairwise =
                            spans.begin_at("pairwise", resolve_span.id, resolve_span.start_micros);
                        spans.record(
                            pairwise,
                            seg.pairwise_wall_micros,
                            &[
                                ("segment", Value::U64(seg.segment)),
                                ("pairs", Value::U64(seg.pairs)),
                                ("oracle_calls", Value::U64(seg.oracle_calls)),
                                ("oracle_spend", Value::U64(seg.oracle_spend)),
                                (
                                    "oracle_latency_micros",
                                    Value::U64(seg.oracle_latency_micros),
                                ),
                            ],
                            sink,
                        );
                    }
                    let mut fields: Vec<(&'static str, Value<'static>)> =
                        vec![("records", Value::U64(batch_len as u64))];
                    if let (Some(before), Some(after)) = (proc_before, ProcSample::capture()) {
                        metrics
                            .resolve_minor_faults
                            .add(after.minor_faults.saturating_sub(before.minor_faults));
                        metrics
                            .resolve_major_faults
                            .add(after.major_faults.saturating_sub(before.major_faults));
                        fields.extend(before.delta_fields(&after));
                    }
                    spans.finish(resolve_span, &fields, sink);
                }
                let snapshot = Arc::new(ResolvedSnapshot {
                    epoch: last_epoch,
                    records: resolver.len(),
                    resolve_k,
                    clusters: output.clusters,
                    stats: output.stats,
                    oracle: output.oracle,
                    resolve_wall: output.wall,
                });
                let records_total = snapshot.records as u64;
                let publish_span = spans.begin("publish", root.id);
                publisher.publish(snapshot);

                metrics.batch_records.observe(batch_len as f64);
                metrics.applied_batches.add(applied_batches);
                metrics.published_epoch.set(last_epoch);
                metrics
                    .publish_seconds
                    .observe(pass_start.elapsed().as_secs_f64());

                // Wake barrier waiters after the snapshot is visible.
                let (lock, condvar) = &**barrier;
                let mut state = lock_unpoisoned(lock);
                state.epoch = last_epoch;
                state.records = records_total;
                drop(state);
                condvar.notify_all();

                if tracing {
                    spans.finish(publish_span, &[("epoch", Value::U64(last_epoch))], sink);
                    let total = spans.finish_at(
                        root,
                        spans.now_micros(),
                        &[
                            ("records", Value::U64(batch_len as u64)),
                            ("batches", Value::U64(applied_batches)),
                            ("epoch", Value::U64(last_epoch)),
                        ],
                        sink,
                    );
                    metrics.ingest_to_visible.observe(total as f64 / 1e6);
                }
            }
        }
    }
}

/// Locks a mutex, recovering from poisoning: the pipeline must stay
/// alive even if a request worker panicked mid-call.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use adalsh_core::AdaLshConfig;
    use adalsh_data::{Dataset, FieldDistance, FieldKind, FieldValue, ShingleSet};

    fn shingle_record(items: &[u64]) -> Record {
        Record::single(FieldValue::Shingles(ShingleSet::new(items.to_vec())))
    }

    fn test_pipeline(config: PipelineConfig) -> (Pipeline, Metrics) {
        let schema = Schema::single("s", FieldKind::Shingles);
        let records: Vec<Record> = (0..8)
            .map(|i| shingle_record(&[i, i + 1, i + 2, 100]))
            .collect();
        let labels = (0..8).map(|i| i as u32 / 2).collect();
        let dataset = Dataset::new(schema, records, labels);
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.6);
        let resolver = OnlineAdaLsh::new(&dataset, AdaLshConfig::new(rule.clone())).unwrap();
        let metrics = Metrics::new();
        let pipeline = Pipeline::start(
            resolver,
            rule,
            None,
            config,
            metrics.pipeline(),
            Arc::new(Spans::new(64, 0)),
        );
        (pipeline, metrics)
    }

    #[test]
    fn boot_publishes_epoch_zero_synchronously() {
        let (pipeline, _metrics) = test_pipeline(PipelineConfig::default());
        let snapshot = pipeline.current();
        assert_eq!(snapshot.epoch, 0);
        assert_eq!(snapshot.records, 8);
        assert!(!snapshot.clusters.is_empty());
        assert!(snapshot.stats.hash_evals > 0, "cold boot resolves");
    }

    #[test]
    fn submit_assigns_ids_and_epochs_in_order() {
        let (pipeline, _metrics) = test_pipeline(PipelineConfig::default());
        let a = pipeline
            .submit(vec![shingle_record(&[1, 2, 3]), shingle_record(&[4, 5, 6])])
            .unwrap();
        assert_eq!(a.ids, vec![8, 9]);
        assert_eq!(a.visible_epoch, 1);
        let b = pipeline.submit(vec![shingle_record(&[7, 8, 9])]).unwrap();
        assert_eq!(b.ids, vec![10]);
        assert_eq!(b.visible_epoch, 2);
        assert!(
            pipeline.wait_until(b.visible_epoch, 0),
            "barrier reaches epoch 2"
        );
        let snapshot = pipeline.current();
        assert_eq!(snapshot.records, 11);
        assert!(snapshot.epoch >= 2);
    }

    /// One applied ingest batch leaves a full span tree in the ring:
    /// an `ingest_batch` root with `queue_wait` / `coalesce` /
    /// `resolve` / `publish` children, and engine-derived
    /// `hash_rounds` / `pairwise` grandchildren under `resolve`.
    #[test]
    fn ingest_pass_records_a_span_tree() {
        let schema = Schema::single("s", FieldKind::Shingles);
        let records: Vec<Record> = (0..8)
            .map(|i| shingle_record(&[i, i + 1, i + 2, 100]))
            .collect();
        let labels = (0..8).map(|i| i as u32 / 2).collect();
        let dataset = Dataset::new(schema, records, labels);
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.6);
        let resolver = OnlineAdaLsh::new(&dataset, AdaLshConfig::new(rule.clone())).unwrap();
        let metrics = Metrics::new();
        let spans = Arc::new(Spans::new(64, 0));
        let pipeline = Pipeline::start(
            resolver,
            rule,
            None,
            PipelineConfig::default(),
            metrics.pipeline(),
            Arc::clone(&spans),
        );

        let accepted = pipeline.submit(vec![shingle_record(&[1, 2, 3])]).unwrap();
        assert!(pipeline.wait_until(accepted.visible_epoch, 0));
        // The root span finishes just after the barrier wakes; poll
        // briefly instead of racing it.
        let deadline = Instant::now() + Duration::from_secs(5);
        let recent = loop {
            let recent = spans.recent();
            if recent.iter().any(|s| s.op == "ingest_batch") {
                break recent;
            }
            assert!(Instant::now() < deadline, "root span never completed");
            std::thread::sleep(Duration::from_millis(5));
        };

        let root = recent.iter().find(|s| s.op == "ingest_batch").unwrap();
        assert_eq!(root.parent, 0);
        let mut child_sum = 0;
        for op in ["queue_wait", "coalesce", "resolve", "publish"] {
            let child = recent
                .iter()
                .find(|s| s.op == op)
                .unwrap_or_else(|| panic!("missing child {op}"));
            assert_eq!(child.parent, root.id, "{op} hangs off the root");
            assert!(
                child.start_micros >= root.start_micros
                    && child.start_micros + child.duration_micros
                        <= root.start_micros + root.duration_micros,
                "{op} window escapes the root"
            );
            child_sum += child.duration_micros;
        }
        assert!(child_sum <= root.duration_micros, "children outsum root");

        let resolve = recent.iter().find(|s| s.op == "resolve").unwrap();
        for op in ["hash_rounds", "pairwise"] {
            let child = recent
                .iter()
                .find(|s| s.op == op)
                .unwrap_or_else(|| panic!("missing engine child {op}"));
            assert_eq!(child.parent, resolve.id, "{op} hangs off resolve");
            // The boot segment was discarded, so the first batch links
            // to segment 2 of the trace stream.
            assert!(
                child
                    .fields
                    .iter()
                    .any(|(n, v)| *n == "segment"
                        && matches!(v, adalsh_obs::trace::OwnedValue::U64(2))),
                "{op} links to segment 2: {:?}",
                child.fields
            );
        }

        // The span-backed metric families saw the pass.
        let text = metrics.render();
        assert!(
            text.contains("adalsh_ingest_to_visible_seconds_count 1"),
            "{text}"
        );
    }

    #[test]
    fn invalid_batch_reserves_nothing() {
        let (pipeline, _metrics) = test_pipeline(PipelineConfig::default());
        let bad = Record::new(vec![
            FieldValue::Shingles(ShingleSet::new(vec![1])),
            FieldValue::Shingles(ShingleSet::new(vec![2])),
        ]);
        match pipeline.submit(vec![shingle_record(&[1, 2]), bad]) {
            Err(SubmitError::Invalid(message)) => {
                assert!(message.contains("record 1"), "{message}")
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        let ok = pipeline.submit(vec![shingle_record(&[1, 2, 3])]).unwrap();
        assert_eq!(ok.ids, vec![8], "rejected batch burned no ids");
        assert_eq!(ok.visible_epoch, 1, "rejected batch burned no epoch");
    }

    #[test]
    fn wait_until_times_out_on_unreached_epoch() {
        let (pipeline, _metrics) = test_pipeline(PipelineConfig {
            barrier_timeout: Duration::from_millis(50),
            ..PipelineConfig::default()
        });
        let start = Instant::now();
        assert!(!pipeline.wait_until(999, 0));
        assert!(start.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn snapshot_without_path_reports_disabled() {
        let (pipeline, _metrics) = test_pipeline(PipelineConfig::default());
        let err = pipeline.snapshot().unwrap_err();
        assert!(err.contains("disabled"), "{err}");
    }

    #[test]
    fn snapshot_lands_at_an_epoch_boundary() {
        let dir = std::env::temp_dir().join(format!("adalsh-pipeline-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");

        let schema = Schema::single("s", FieldKind::Shingles);
        let records: Vec<Record> = (0..8)
            .map(|i| shingle_record(&[i, i + 1, i + 2, 100]))
            .collect();
        let labels = (0..8).map(|i| i as u32 / 2).collect();
        let dataset = Dataset::new(schema, records, labels);
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.6);
        let resolver = OnlineAdaLsh::new(&dataset, AdaLshConfig::new(rule.clone())).unwrap();
        let metrics = Metrics::new();
        let pipeline = Pipeline::start(
            resolver,
            rule,
            Some(path.clone()),
            PipelineConfig::default(),
            metrics.pipeline(),
            Arc::new(Spans::disabled()),
        );

        pipeline.submit(vec![shingle_record(&[1, 2, 3])]).unwrap();
        let done = pipeline.snapshot().unwrap();
        assert_eq!(done.records, 9, "snapshot sees the batch queued before it");
        assert_eq!(done.epoch, 1);
        let loaded = ServeSnapshot::load(&path).unwrap();
        assert_eq!(loaded.resolver.records.len(), 9);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
