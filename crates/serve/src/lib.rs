//! # adalsh-serve
//!
//! An online top-k entity-resolution HTTP service over the adaLSH
//! engine — the paper's §9 online setting (see
//! [`adalsh_core::online`]) turned into a long-lived process.
//!
//! The service is std-only by design: a hand-rolled HTTP/1.1 layer over
//! [`std::net::TcpListener`] with a bounded worker-thread pool — no
//! async runtime, no web framework. The workload doesn't want one:
//! queries serialize on the resolver lock anyway (they mutate
//! per-record hash states), so a small pool of blocking workers is both
//! sufficient and simple to reason about.
//!
//! Module map:
//!
//! * [`http`] — request parsing / response writing, bounded and
//!   timeout-aware
//! * [`server`] — accept loop, bounded queue, worker pool, graceful
//!   drain on shutdown
//! * [`service`] — routing and the resolver lock discipline
//! * [`metrics`] — Prometheus text exposition (`/metrics`)
//! * [`snapshot`] — durable resume: restart without re-hashing
//!
//! Endpoints:
//!
//! | Endpoint | Effect |
//! |---|---|
//! | `POST /ingest` | schema-validated batch intake, returns assigned ids |
//! | `GET /topk?k=N` | current top-k clusters + engine stats |
//! | `GET /healthz` | lock-free liveness + record count |
//! | `GET /metrics` | Prometheus text: requests, latency, engine counters |
//! | `POST /snapshot` | atomic state persistence for `--resume` |

pub mod http;
pub mod metrics;
pub mod server;
pub mod service;
pub mod snapshot;

pub use server::{Server, ServerConfig};
pub use service::Service;
pub use snapshot::{ServeSnapshot, SNAPSHOT_VERSION};
