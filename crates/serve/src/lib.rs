//! # adalsh-serve
//!
//! An online top-k entity-resolution HTTP service over the adaLSH
//! engine — the paper's §9 online setting (see
//! [`adalsh_core::online`]) turned into a long-lived process.
//!
//! The service is std-only by design: a hand-rolled HTTP/1.1 layer over
//! [`std::net::TcpListener`] with a bounded worker-thread pool — no
//! async runtime, no web framework.
//!
//! The service is **read/write split**: `POST /ingest` lands batches in
//! a bounded queue, one resolver thread owns the engine and drains the
//! queue in adaptive batches, and after every pass it epoch-publishes
//! an immutable [`pipeline::ResolvedSnapshot`] through a lock-free slot
//! ([`publish`]). `GET /topk`, `/healthz`, and `/metrics` never acquire
//! a mutex — readers clone an `Arc` and answer from it, so a slow
//! resolve pass cannot stall the read path.
//!
//! Module map:
//!
//! * [`http`] — request parsing / response writing, bounded and
//!   timeout-aware
//! * [`server`] — accept loop, bounded queue, worker pool, graceful
//!   drain on shutdown
//! * [`publish`] — single-writer lock-free `Arc` publication slot
//! * [`pipeline`] — bounded intake queue, resolver thread, epoch
//!   publication, read-your-writes barriers
//! * [`service`] — routing over the pipeline
//! * [`metrics`] — Prometheus text exposition (`/metrics`)
//! * [`snapshot`] — durable resume: restart without re-hashing
//!
//! Endpoints:
//!
//! | Endpoint | Effect |
//! |---|---|
//! | `POST /ingest` | schema-validated batch intake; returns assigned ids + `visible_epoch`; `503` + `Retry-After` when the queue is full |
//! | `GET /topk?k=N[&wait_epoch=E][&min_records=R]` | top-k clusters + resolve stats from the published snapshot; optional read-your-writes barrier |
//! | `GET /healthz` | lock-free liveness + record count + epoch |
//! | `GET /metrics` | Prometheus text: requests, latency, queue/epoch, engine + oracle counters |
//! | `POST /snapshot` | state persisted by the resolver thread at an epoch boundary (fsynced temp file + atomic rename + directory fsync) |
//! | `POST /adjudicate` | external pairwise verdicts into the noisy oracle's overlay; re-resolves and re-publishes at the current epoch (400 under `--oracle exact`) |
//! | `GET /adjudicate` | adjudication worklist: overlay version/size + the published snapshot's budget-degraded pairs |

pub mod http;
pub mod metrics;
pub mod pipeline;
pub mod publish;
pub mod server;
pub mod service;
pub mod snapshot;

pub use pipeline::{Pipeline, PipelineConfig, ResolvedSnapshot};
pub use server::{Server, ServerConfig};
pub use service::Service;
pub use snapshot::{ServeSnapshot, SNAPSHOT_VERSION};
