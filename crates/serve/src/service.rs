//! Request routing over the read/write-split pipeline.
//!
//! Reads (`GET /topk`, `/healthz`, `/metrics`) never acquire a mutex:
//! they clone the epoch-published `Arc<`[`ResolvedSnapshot`]`>` (or render
//! the atomic-backed metrics registry) and answer from it, so a slow
//! resolve pass cannot stall a reader. Writes (`POST /ingest`) validate
//! against the schema and enqueue into the pipeline's bounded intake
//! queue — a full queue is `503` + `Retry-After`, never unbounded
//! memory. `POST /snapshot` asks the resolver thread to persist at the
//! next epoch boundary; only the snapshot caller waits.
//!
//! Read-your-writes is explicit: `/ingest` returns the `visible_epoch`
//! at which the batch will be readable, and `/topk` accepts
//! `?wait_epoch=E` / `?min_records=N` to park until the published
//! snapshot reaches that floor (plain reads never touch the barrier).
//!
//! Handlers never panic across the service boundary: schema violations,
//! malformed JSON, bad parameters, and snapshot failures all map to
//! structured `{"error": …}` responses with the appropriate status.

use std::path::PathBuf;
use std::sync::Arc;

use adalsh_core::{OnlineAdaLsh, OracleMode, VerdictOverlay};
use adalsh_data::{MatchRule, Record};
use adalsh_obs::span::DEFAULT_RING_CAP;
use adalsh_obs::trace::OwnedValue;
use adalsh_obs::{Spans, TraceSink, Value as TraceValue};
use serde::{Deserialize, Serialize, Value};

use crate::http::{Request, Response};
use crate::metrics::Metrics;
use crate::pipeline::{Pipeline, PipelineConfig, ResolvedSnapshot, SubmitError};

/// Default cap on request bodies (`/ingest` batches), in bytes.
pub const DEFAULT_MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// The resolver service behind the HTTP layer.
pub struct Service {
    pipeline: Pipeline,
    metrics: Metrics,
    /// The span recorder shared with the pipeline: `/debug/spans`
    /// serves its ring, `/topk` roots its query spans here.
    spans: Arc<Spans>,
    /// Clone of the resolver's composed trace sink, so query spans
    /// emitted on worker threads land in the same trace stream (e.g. a
    /// `--trace-out` JSONL file) as the resolver's events.
    sink: TraceSink,
    /// Echoed in `POST /snapshot` responses (the pipeline owns the
    /// actual writer).
    snapshot_path: Option<PathBuf>,
    /// External-verdict store behind `POST /adjudicate`; present only
    /// when the resolver runs a noisy oracle. Shared with the resolver,
    /// which consults it before spending any oracle budget.
    overlay: Option<Arc<VerdictOverlay>>,
}

impl Service {
    /// Like [`Service::with_config`] with a default [`PipelineConfig`].
    pub fn new(resolver: OnlineAdaLsh, rule: MatchRule, snapshot_path: Option<PathBuf>) -> Self {
        Self::with_config(resolver, rule, snapshot_path, PipelineConfig::default())
    }

    /// Wraps a resolver configured with `rule`, resolves + publishes the
    /// boot snapshot synchronously, and starts the resolver thread. The
    /// service folds the engine's trace events into its metrics
    /// registry: the resolver's sink is composed with the [`Metrics`]
    /// engine subscriber, so a caller-installed sink (e.g. `--trace-out`
    /// JSONL) keeps receiving every event as well.
    pub fn with_config(
        mut resolver: OnlineAdaLsh,
        rule: MatchRule,
        snapshot_path: Option<PathBuf>,
        config: PipelineConfig,
    ) -> Self {
        let metrics = Metrics::new();
        let composed = resolver.trace().with(metrics.engine_subscriber());
        resolver.set_trace(composed.clone());
        let spans = Arc::new(Spans::new(DEFAULT_RING_CAP, config.slow_ms));
        // A noisy-oracle resolver gets an external-verdict overlay so
        // POST /adjudicate can overrule individual pair verdicts.
        let overlay = match resolver.config().oracle {
            OracleMode::Noisy(_) => {
                let overlay = Arc::new(VerdictOverlay::default());
                resolver.set_oracle_overlay(Some(Arc::clone(&overlay)));
                Some(overlay)
            }
            OracleMode::Exact => None,
        };
        let pipeline = Pipeline::start(
            resolver,
            rule,
            snapshot_path.clone(),
            config,
            metrics.pipeline(),
            Arc::clone(&spans),
        );
        Self {
            pipeline,
            metrics,
            spans,
            sink: composed,
            snapshot_path,
            overlay,
        }
    }

    /// The service's metrics registry (the server layer records request
    /// latencies into it).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Routes one request to its handler. Returns the endpoint label
    /// used in metrics alongside the response.
    pub fn handle(&self, request: &Request) -> (&'static str, Response) {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => ("/healthz", self.healthz()),
            ("GET", "/topk") => ("/topk", self.topk(request)),
            ("GET", "/metrics") => ("/metrics", Response::text(200, self.metrics.render())),
            ("GET", "/debug/spans") => ("/debug/spans", self.debug_spans()),
            ("POST", "/ingest") => ("/ingest", self.ingest(request)),
            ("POST", "/snapshot") => ("/snapshot", self.snapshot()),
            ("POST", "/adjudicate") => ("/adjudicate", self.adjudicate(request)),
            ("GET", "/adjudicate") => ("/adjudicate", self.adjudication_state()),
            (
                _,
                "/healthz" | "/topk" | "/metrics" | "/debug/spans" | "/ingest" | "/snapshot"
                | "/adjudicate",
            ) => (
                "unmatched",
                Response::error(405, &format!("method {} not allowed here", request.method)),
            ),
            (_, path) => (
                "unmatched",
                Response::error(404, &format!("no route for {path}")),
            ),
        }
    }

    /// Liveness: one `Arc` clone of the published snapshot, no locks.
    fn healthz(&self) -> Response {
        let snapshot = self.pipeline.current();
        let body = Value::Map(vec![
            ("status".to_string(), Value::Str("ok".to_string())),
            ("records".to_string(), Value::U64(snapshot.records as u64)),
            ("epoch".to_string(), Value::U64(snapshot.epoch)),
        ]);
        json_ok(&body)
    }

    /// `GET /topk?k=N[&wait_epoch=E][&min_records=R]`: serves the first
    /// `N` clusters of the published snapshot (resolved at `resolve_k`;
    /// the canonical cluster order makes that prefix exactly the
    /// top-`N` answer). The optional barriers park until the published
    /// epoch / record count reaches the floor — plain reads clone an
    /// `Arc` and return.
    fn topk(&self, request: &Request) -> Response {
        // Every query gets a root span; the only child is the barrier
        // wait (a plain read's whole cost is the Arc clone, so deeper
        // decomposition would be noise).
        let root = self.spans.begin("topk_query", 0);
        let response = self.topk_inner(request, root.id);
        self.spans.finish(root, &[], &self.sink);
        response
    }

    fn topk_inner(&self, request: &Request, parent_span: u64) -> Response {
        let k: usize = match request.query_param("k") {
            None => return Response::error(400, "missing required query parameter k"),
            Some(raw) => match raw.parse() {
                Ok(k) if k >= 1 => k,
                Ok(_) => return Response::error(400, "k must be at least 1"),
                Err(e) => return Response::error(400, &format!("bad k '{raw}': {e}")),
            },
        };
        let resolve_k = self.pipeline.resolve_k();
        if k > resolve_k {
            return Response::error(
                400,
                &format!(
                    "k={k} exceeds the server's resolve depth {resolve_k}; \
                     restart with a larger --resolve-k to serve deeper answers"
                ),
            );
        }
        let wait_epoch = match parse_u64_param(request, "wait_epoch") {
            Ok(v) => v.unwrap_or(0),
            Err(response) => return response,
        };
        let min_records = match parse_u64_param(request, "min_records") {
            Ok(v) => v.unwrap_or(0),
            Err(response) => return response,
        };

        let mut snapshot = self.pipeline.current();
        if snapshot.epoch < wait_epoch || (snapshot.records as u64) < min_records {
            let wait = self.spans.begin("barrier_wait", parent_span);
            let reached = self.pipeline.wait_until(wait_epoch, min_records);
            self.spans
                .finish(wait, &[("epoch", TraceValue::U64(wait_epoch))], &self.sink);
            if !reached {
                let current = self.pipeline.current();
                return Response::error(
                    408,
                    &format!(
                        "barrier not reached before timeout: published epoch {} / {} records, \
                         needed epoch >= {wait_epoch} and records >= {min_records}",
                        current.epoch, current.records
                    ),
                );
            }
            snapshot = self.pipeline.current();
        }
        json_ok(&topk_value(&snapshot, k))
    }

    /// `GET /debug/spans`: the recent completed spans (newest first)
    /// from the in-memory ring — a live ops surface needing no trace
    /// file. Reads the ring under its own mutex; never touches the
    /// resolver.
    fn debug_spans(&self) -> Response {
        let recent = self.spans.recent();
        let items: Vec<Value> = recent
            .iter()
            .map(|span| {
                let mut fields = vec![
                    ("id".to_string(), Value::U64(span.id)),
                    ("parent".to_string(), Value::U64(span.parent)),
                    ("op".to_string(), Value::Str(span.op.to_string())),
                    ("start_micros".to_string(), Value::U64(span.start_micros)),
                    (
                        "duration_micros".to_string(),
                        Value::U64(span.duration_micros),
                    ),
                ];
                for (name, value) in &span.fields {
                    let json = match value {
                        OwnedValue::U64(v) => Value::U64(*v),
                        OwnedValue::F64(v) => Value::F64(*v),
                        OwnedValue::Str(v) => Value::Str(v.clone()),
                    };
                    fields.push((name.to_string(), json));
                }
                Value::Map(fields)
            })
            .collect();
        let body = Value::Map(vec![
            ("count".to_string(), Value::U64(items.len() as u64)),
            ("spans".to_string(), Value::Seq(items)),
        ]);
        json_ok(&body)
    }

    /// `POST /ingest`: schema-validated batch intake into the bounded
    /// pipeline queue. The batch is atomic — one bad record rejects the
    /// whole request and nothing is reserved. An accepted batch is
    /// answered *before* it is applied; the response carries the epoch
    /// at which it becomes visible (read-your-writes via
    /// `GET /topk?wait_epoch=<visible_epoch>`).
    fn ingest(&self, request: &Request) -> Response {
        let body = match request.body_utf8() {
            Ok(text) => text,
            Err(e) => return Response::error(400, &e),
        };
        let parsed: Value = match serde_json::from_str(body) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("body is not valid JSON: {e}")),
        };
        let Some(records_value) = parsed.get("records") else {
            return Response::error(400, "body must be an object with a 'records' array");
        };
        let records = match Vec::<Record>::from_value(records_value) {
            Ok(r) => r,
            Err(e) => return Response::error(400, &format!("bad record in 'records': {e}")),
        };
        if records.is_empty() {
            return Response::error(400, "'records' must not be empty");
        }

        match self.pipeline.submit(records) {
            Ok(accepted) => {
                self.metrics.observe_ingest(accepted.ids.len());
                let body = Value::Map(vec![
                    ("ids".to_string(), accepted.ids.to_value()),
                    ("count".to_string(), Value::U64(accepted.ids.len() as u64)),
                    (
                        "visible_epoch".to_string(),
                        Value::U64(accepted.visible_epoch),
                    ),
                    (
                        "read_your_writes".to_string(),
                        Value::Str(format!(
                            "GET /topk?k=<k>&wait_epoch={} blocks until this batch is visible",
                            accepted.visible_epoch
                        )),
                    ),
                ]);
                json_ok(&body)
            }
            Err(SubmitError::Invalid(message)) => Response::error(400, &message),
            Err(SubmitError::Overloaded { retry_after_secs }) => {
                let body = Value::Map(vec![
                    (
                        "error".to_string(),
                        Value::Str("ingest queue full; the batch was NOT accepted".to_string()),
                    ),
                    (
                        "retry_after_seconds".to_string(),
                        Value::U64(retry_after_secs),
                    ),
                    (
                        "read_your_writes".to_string(),
                        Value::Str(
                            "nothing was reserved: retrying the identical request is safe"
                                .to_string(),
                        ),
                    ),
                ]);
                match serde_json::to_string(&body) {
                    Ok(text) => Response::json(503, text)
                        .with_header("Retry-After", retry_after_secs.to_string()),
                    Err(e) => Response::error(500, &format!("response serialization failed: {e}")),
                }
            }
            Err(SubmitError::ShuttingDown) => {
                Response::error(503, "server is shutting down; batch not accepted")
            }
        }
    }

    /// `POST /adjudicate`: external pairwise verdicts. Body shape
    /// `{"verdicts":[{"a":0,"b":1,"matched":false}, …]}`. Each verdict
    /// lands in the overlay (authoritative for its pair: the noisy
    /// oracle consults the overlay before spending any budget), then
    /// the resolver re-resolves at the current epoch so the corrected
    /// answer is visible to `/topk` when this request returns.
    fn adjudicate(&self, request: &Request) -> Response {
        let Some(overlay) = &self.overlay else {
            return Response::error(
                400,
                "external adjudication requires a noisy oracle: \
                 start the server with --oracle noisy",
            );
        };
        let body = match request.body_utf8() {
            Ok(text) => text,
            Err(e) => return Response::error(400, &e),
        };
        let parsed: Value = match serde_json::from_str(body) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("body is not valid JSON: {e}")),
        };
        let Some(verdicts_value) = parsed.get("verdicts") else {
            return Response::error(400, "body must be an object with a 'verdicts' array");
        };
        let verdicts = match Vec::<Verdict>::from_value(verdicts_value) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("bad verdict in 'verdicts': {e}")),
        };
        if verdicts.is_empty() {
            return Response::error(400, "'verdicts' must not be empty");
        }
        if let Some(bad) = verdicts.iter().find(|v| v.a == v.b) {
            return Response::error(
                400,
                &format!(
                    "verdict pair ({}, {}) must name two distinct records",
                    bad.a, bad.b
                ),
            );
        }

        let mut version = overlay.version();
        for verdict in &verdicts {
            version = overlay.set(verdict.a, verdict.b, verdict.matched);
        }
        self.metrics.observe_adjudication(verdicts.len(), version);
        match self.pipeline.reresolve() {
            Ok(snapshot) => {
                let body = Value::Map(vec![
                    ("applied".to_string(), Value::U64(verdicts.len() as u64)),
                    ("overlay_version".to_string(), Value::U64(version)),
                    ("epoch".to_string(), Value::U64(snapshot.epoch)),
                    ("records".to_string(), Value::U64(snapshot.records as u64)),
                ]);
                json_ok(&body)
            }
            Err(e) => Response::error(503, &e),
        }
    }

    /// `GET /adjudicate`: the adjudication worklist — overlay state plus
    /// the published snapshot's degraded pairs (verdicts the oracle fell
    /// back to the cheap rule for; prime candidates for an external
    /// verdict).
    fn adjudication_state(&self) -> Response {
        let Some(overlay) = &self.overlay else {
            return Response::error(
                400,
                "external adjudication requires a noisy oracle: \
                 start the server with --oracle noisy",
            );
        };
        let snapshot = self.pipeline.current();
        let degraded: Vec<Value> = snapshot
            .oracle
            .as_ref()
            .map(|spend| {
                spend
                    .degraded_pairs
                    .iter()
                    .map(|&(a, b)| Value::Seq(vec![Value::U64(a as u64), Value::U64(b as u64)]))
                    .collect()
            })
            .unwrap_or_default();
        let body = Value::Map(vec![
            ("overlay_version".to_string(), Value::U64(overlay.version())),
            (
                "overlay_verdicts".to_string(),
                Value::U64(overlay.len() as u64),
            ),
            ("epoch".to_string(), Value::U64(snapshot.epoch)),
            ("degraded_pairs".to_string(), Value::Seq(degraded)),
        ]);
        json_ok(&body)
    }

    /// `POST /snapshot`: the resolver thread persists at the next epoch
    /// boundary; readers are never blocked, only this caller waits.
    fn snapshot(&self) -> Response {
        let Some(path) = &self.snapshot_path else {
            return Response::error(
                400,
                "snapshotting is disabled: start the server with --snapshot-out <path>",
            );
        };
        match self.pipeline.snapshot() {
            Ok(done) => {
                let body = Value::Map(vec![
                    ("path".to_string(), Value::Str(path.display().to_string())),
                    ("records".to_string(), Value::U64(done.records as u64)),
                    ("epoch".to_string(), Value::U64(done.epoch)),
                ]);
                json_ok(&body)
            }
            Err(e) => Response::error(500, &e),
        }
    }
}

/// One external pairwise verdict in a `POST /adjudicate` body.
#[derive(Debug, Deserialize)]
struct Verdict {
    a: u32,
    b: u32,
    matched: bool,
}

/// Parses an optional non-negative integer query parameter.
fn parse_u64_param(request: &Request, name: &str) -> Result<Option<u64>, Response> {
    match request.query_param(name) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|e| Response::error(400, &format!("bad {name} '{raw}': {e}"))),
    }
}

/// Renders a value as a 200 JSON response.
fn json_ok(value: &Value) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(200, body),
        Err(e) => Response::error(500, &format!("response serialization failed: {e}")),
    }
}

/// JSON shape of a `/topk` answer, assembled from the published
/// snapshot: the first `k` clusters plus the resolve pass's stats and
/// provenance (`epoch`, `records`, `resolve_k`).
fn topk_value(snapshot: &ResolvedSnapshot, k: usize) -> Value {
    let clusters: Vec<Vec<u32>> = snapshot.clusters.iter().take(k).cloned().collect();
    let mut fields = vec![
        ("k".to_string(), Value::U64(k as u64)),
        ("epoch".to_string(), Value::U64(snapshot.epoch)),
        ("records".to_string(), Value::U64(snapshot.records as u64)),
        (
            "resolve_k".to_string(),
            Value::U64(snapshot.resolve_k as u64),
        ),
        ("clusters".to_string(), clusters.to_value()),
        ("stats".to_string(), snapshot.stats.to_value()),
        (
            "wall_micros".to_string(),
            Value::U64(snapshot.resolve_wall.as_micros() as u64),
        ),
    ];
    if let Some(spend) = &snapshot.oracle {
        fields.push(("oracle".to_string(), spend.to_value()));
    }
    Value::Map(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_core::AdaLshConfig;
    use adalsh_data::{Dataset, FieldDistance, FieldKind, FieldValue, Schema, ShingleSet};

    fn shingle_record(items: &[u64]) -> Record {
        Record::single(FieldValue::Shingles(ShingleSet::new(items.to_vec())))
    }

    fn test_service() -> Service {
        let schema = Schema::single("s", FieldKind::Shingles);
        let records: Vec<Record> = (0..8)
            .map(|i| shingle_record(&[i, i + 1, i + 2, 100]))
            .collect();
        let labels = (0..8).map(|i| i as u32 / 2).collect();
        let dataset = Dataset::new(schema, records, labels);
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.6);
        let resolver = OnlineAdaLsh::new(&dataset, AdaLshConfig::new(rule.clone())).unwrap();
        Service::new(resolver, rule, None)
    }

    fn get(path: &str) -> Request {
        let (path, query) = match path.split_once('?') {
            None => (path.to_string(), Vec::new()),
            Some((p, qs)) => (
                p.to_string(),
                qs.split('&')
                    .map(|kv| {
                        let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
                        (k.to_string(), v.to_string())
                    })
                    .collect(),
            ),
        };
        Request {
            method: "GET".to_string(),
            path,
            query,
            body: Vec::new(),
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            query: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn healthz_reports_record_count_and_epoch() {
        let service = test_service();
        let (endpoint, response) = service.handle(&get("/healthz"));
        assert_eq!(endpoint, "/healthz");
        assert_eq!(response.status, 200);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("\"records\":8"), "{text}");
        assert!(text.contains("\"epoch\":0"), "{text}");
    }

    #[test]
    fn topk_requires_a_valid_k_within_resolve_depth() {
        let service = test_service();
        assert_eq!(service.handle(&get("/topk")).1.status, 400);
        assert_eq!(service.handle(&get("/topk?k=0")).1.status, 400);
        assert_eq!(service.handle(&get("/topk?k=nope")).1.status, 400);
        // Deeper than the configured resolve_k cannot be served from the
        // published snapshot.
        assert_eq!(service.handle(&get("/topk?k=1000")).1.status, 400);
        assert_eq!(service.handle(&get("/topk?k=2&wait_epoch=x")).1.status, 400);
        let ok = service.handle(&get("/topk?k=2")).1;
        assert_eq!(ok.status, 200);
        let text = String::from_utf8(ok.body).unwrap();
        assert!(text.contains("\"clusters\":"), "{text}");
        assert!(text.contains("\"hash_evals\":"), "{text}");
        assert!(text.contains("\"epoch\":0"), "{text}");
    }

    #[test]
    fn topk_wait_epoch_observes_a_prior_ingest() {
        let service = test_service();
        let good = "{\"records\":[{\"fields\":[{\"Shingles\":[1,2,3]}]},\
                     {\"fields\":[{\"Shingles\":[4,5,6]}]}]}";
        let response = service.handle(&post("/ingest", good)).1;
        assert_eq!(response.status, 200);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("\"visible_epoch\":1"), "{text}");

        let read = service.handle(&get("/topk?k=2&wait_epoch=1")).1;
        assert_eq!(read.status, 200);
        let text = String::from_utf8(read.body).unwrap();
        assert!(text.contains("\"records\":10"), "{text}");

        let read = service.handle(&get("/topk?k=2&min_records=10")).1;
        assert_eq!(read.status, 200);
    }

    #[test]
    fn ingest_validates_and_is_atomic() {
        let service = test_service();
        // Not JSON.
        assert_eq!(service.handle(&post("/ingest", "nope")).1.status, 400);
        // JSON but wrong shape.
        assert_eq!(service.handle(&post("/ingest", "{}")).1.status, 400);
        assert_eq!(
            service
                .handle(&post("/ingest", "{\"records\":[]}"))
                .1
                .status,
            400
        );
        // Second record violates the schema (two fields) — nothing lands.
        let bad = "{\"records\":[{\"fields\":[{\"Shingles\":[1,2]}]},\
                    {\"fields\":[{\"Shingles\":[1]},{\"Shingles\":[2]}]}]}";
        assert_eq!(service.handle(&post("/ingest", bad)).1.status, 400);
        let health = String::from_utf8(service.handle(&get("/healthz")).1.body).unwrap();
        assert!(health.contains("\"records\":8"), "{health}");

        // A clean batch is accepted; ids and the visibility epoch come
        // back in order (the rejected batch burned neither).
        let good = "{\"records\":[{\"fields\":[{\"Shingles\":[1,2,3]}]},\
                     {\"fields\":[{\"Shingles\":[4,5,6]}]}]}";
        let response = service.handle(&post("/ingest", good)).1;
        assert_eq!(response.status, 200);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("\"ids\":[8,9]"), "{text}");
        assert!(text.contains("\"count\":2"), "{text}");
        assert!(text.contains("\"visible_epoch\":1"), "{text}");
        assert!(text.contains("read_your_writes"), "{text}");
    }

    #[test]
    fn unknown_routes_and_methods_are_structured_errors() {
        let service = test_service();
        let (endpoint, response) = service.handle(&get("/nope"));
        assert_eq!(endpoint, "unmatched");
        assert_eq!(response.status, 404);
        assert!(String::from_utf8(response.body)
            .unwrap()
            .contains("\"error\""));
        assert_eq!(service.handle(&post("/topk", "")).1.status, 405);
        assert_eq!(service.handle(&get("/ingest")).1.status, 405);
    }

    #[test]
    fn snapshot_without_a_path_is_rejected() {
        let service = test_service();
        let response = service.handle(&post("/snapshot", "")).1;
        assert_eq!(response.status, 400);
    }

    fn noisy_service(cfg: adalsh_core::NoisyOracleConfig) -> Service {
        let schema = Schema::single("s", FieldKind::Shingles);
        let records: Vec<Record> = (0..8)
            .map(|i| shingle_record(&[i, i + 1, i + 2, 100]))
            .collect();
        let labels = (0..8).map(|i| i as u32 / 2).collect();
        let dataset = Dataset::new(schema, records, labels);
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.6);
        let mut config = AdaLshConfig::new(rule.clone());
        config.oracle = adalsh_core::OracleMode::Noisy(cfg);
        let resolver = OnlineAdaLsh::new(&dataset, config).unwrap();
        Service::new(resolver, rule, None)
    }

    #[test]
    fn adjudicate_requires_a_noisy_oracle() {
        let service = test_service();
        let body = "{\"verdicts\":[{\"a\":0,\"b\":1,\"matched\":false}]}";
        assert_eq!(service.handle(&post("/adjudicate", body)).1.status, 400);
        assert_eq!(service.handle(&get("/adjudicate")).1.status, 400);
        // Route exists for other methods too: 405, not 404.
        let put = Request {
            method: "PUT".to_string(),
            path: "/adjudicate".to_string(),
            query: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(service.handle(&put).1.status, 405);
    }

    #[test]
    fn adjudicate_validates_its_body() {
        let service = noisy_service(adalsh_core::NoisyOracleConfig::default());
        assert_eq!(service.handle(&post("/adjudicate", "nope")).1.status, 400);
        assert_eq!(service.handle(&post("/adjudicate", "{}")).1.status, 400);
        assert_eq!(
            service
                .handle(&post("/adjudicate", "{\"verdicts\":[]}"))
                .1
                .status,
            400
        );
        // A pair must name two distinct records.
        let own = "{\"verdicts\":[{\"a\":3,\"b\":3,\"matched\":true}]}";
        let response = service.handle(&post("/adjudicate", own)).1;
        assert_eq!(response.status, 400);
        assert!(String::from_utf8(response.body)
            .unwrap()
            .contains("distinct"));
    }

    #[test]
    fn adjudicate_overrules_the_oracle_and_republishes() {
        // Zero noise: the oracle tracks the rule exactly until the
        // overlay says otherwise.
        let service = noisy_service(adalsh_core::NoisyOracleConfig::default());
        let before = service.pipeline.current();
        assert!(
            before.stats.pair_comparisons > 0,
            "precondition: the boot resolve adjudicates pairs through the oracle"
        );
        let spend = before
            .oracle
            .as_ref()
            .expect("noisy snapshot carries spend");
        assert!(spend.calls > 0, "oracle settled the pairwise verdicts");
        let top = &before.clusters[0];
        assert!(top.len() >= 2, "precondition: a non-trivial top cluster");
        let (a, b) = (top[0], top[1]);

        let body = format!("{{\"verdicts\":[{{\"a\":{a},\"b\":{b},\"matched\":false}}]}}");
        let response = service.handle(&post("/adjudicate", &body)).1;
        assert_eq!(response.status, 200);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("\"applied\":1"), "{text}");
        assert!(text.contains("\"overlay_version\":1"), "{text}");

        // The re-published answer no longer co-clusters the pair.
        let after = service.pipeline.current();
        assert_eq!(after.epoch, before.epoch, "re-resolve keeps the epoch");
        assert!(
            !after
                .clusters
                .iter()
                .any(|c| c.contains(&a) && c.contains(&b)),
            "overruled pair must be split: {:?}",
            after.clusters
        );

        // The worklist endpoint reflects the overlay.
        let state = service.handle(&get("/adjudicate")).1;
        assert_eq!(state.status, 200);
        let text = String::from_utf8(state.body).unwrap();
        assert!(text.contains("\"overlay_version\":1"), "{text}");
        assert!(text.contains("\"overlay_verdicts\":1"), "{text}");

        // /topk exposes the oracle ledger of the re-resolve.
        let read = service.handle(&get("/topk?k=2")).1;
        assert_eq!(read.status, 200);
        let text = String::from_utf8(read.body).unwrap();
        assert!(text.contains("\"oracle\":"), "{text}");

        // Metrics carry the overlay families.
        let metrics = service.metrics.render();
        assert!(
            metrics.contains("adalsh_oracle_overlay_verdicts_total 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("adalsh_oracle_overlay_version 1"),
            "{metrics}"
        );
        assert!(metrics.contains("adalsh_oracle_calls_total"), "{metrics}");
    }

    /// Satellite chaos drill: a resolver-thread panic (injected via the
    /// oracle's test-only `panic_on_record` hook on the first ingested
    /// record id) must not wedge readers. `/topk` and `/healthz` keep
    /// serving the last published epoch lock-free, and `/ingest`
    /// surfaces 503 once the intake channel disconnects — never a hang,
    /// never a poisoned-read panic.
    #[test]
    fn resolver_panic_keeps_reads_alive_and_sheds_writes() {
        let service = noisy_service(adalsh_core::NoisyOracleConfig {
            // Boot records are ids 0..8; the first ingested record gets
            // id 8 and detonates during its resolve pass.
            panic_on_record: Some(8),
            ..Default::default()
        });
        let before = service.pipeline.current();
        assert_eq!(before.epoch, 0, "boot resolve avoids the tripwire");

        // A duplicate of record 0 joins its cluster, forcing a pairwise
        // adjudication against id 8 on the resolver thread.
        let body = "{\"records\":[{\"fields\":[{\"Shingles\":[0,1,2,100]}]}]}";
        let accepted = service.handle(&post("/ingest", body)).1;
        assert_eq!(accepted.status, 200, "intake happens before the panic");

        // The write path must surface the dead resolver as 503 (the
        // channel disconnects when the thread unwinds) — bounded wait.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let response = service.handle(&post("/ingest", body)).1;
            if response.status == 503 {
                let text = String::from_utf8(response.body).unwrap();
                assert!(text.contains("shutting down"), "{text}");
                break;
            }
            assert_eq!(response.status, 200, "before death, ingest still works");
            assert!(
                std::time::Instant::now() < deadline,
                "resolver thread should have died from the injected panic"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        // Reads never wedge: the boot snapshot is still served.
        let read = service.handle(&get("/topk?k=2")).1;
        assert_eq!(read.status, 200);
        let text = String::from_utf8(read.body).unwrap();
        assert!(text.contains("\"epoch\":0"), "{text}");
        let health = service.handle(&get("/healthz")).1;
        assert_eq!(health.status, 200);
        // A barrier read on the never-published epoch times out with
        // 408 instead of hanging forever (10s pipeline default).
        // Plain reads and metrics stay lock-free throughout.
        assert_eq!(service.handle(&get("/metrics")).1.status, 200);
    }
}
