//! Request routing over the read/write-split pipeline.
//!
//! Reads (`GET /topk`, `/healthz`, `/metrics`) never acquire a mutex:
//! they clone the epoch-published `Arc<`[`ResolvedSnapshot`]`>` (or render
//! the atomic-backed metrics registry) and answer from it, so a slow
//! resolve pass cannot stall a reader. Writes (`POST /ingest`) validate
//! against the schema and enqueue into the pipeline's bounded intake
//! queue — a full queue is `503` + `Retry-After`, never unbounded
//! memory. `POST /snapshot` asks the resolver thread to persist at the
//! next epoch boundary; only the snapshot caller waits.
//!
//! Read-your-writes is explicit: `/ingest` returns the `visible_epoch`
//! at which the batch will be readable, and `/topk` accepts
//! `?wait_epoch=E` / `?min_records=N` to park until the published
//! snapshot reaches that floor (plain reads never touch the barrier).
//!
//! Handlers never panic across the service boundary: schema violations,
//! malformed JSON, bad parameters, and snapshot failures all map to
//! structured `{"error": …}` responses with the appropriate status.

use std::path::PathBuf;

use adalsh_core::OnlineAdaLsh;
use adalsh_data::{MatchRule, Record};
use serde::{Deserialize, Serialize, Value};

use crate::http::{Request, Response};
use crate::metrics::Metrics;
use crate::pipeline::{Pipeline, PipelineConfig, ResolvedSnapshot, SubmitError};

/// Default cap on request bodies (`/ingest` batches), in bytes.
pub const DEFAULT_MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// The resolver service behind the HTTP layer.
pub struct Service {
    pipeline: Pipeline,
    metrics: Metrics,
    /// Echoed in `POST /snapshot` responses (the pipeline owns the
    /// actual writer).
    snapshot_path: Option<PathBuf>,
}

impl Service {
    /// Like [`Service::with_config`] with a default [`PipelineConfig`].
    pub fn new(resolver: OnlineAdaLsh, rule: MatchRule, snapshot_path: Option<PathBuf>) -> Self {
        Self::with_config(resolver, rule, snapshot_path, PipelineConfig::default())
    }

    /// Wraps a resolver configured with `rule`, resolves + publishes the
    /// boot snapshot synchronously, and starts the resolver thread. The
    /// service folds the engine's trace events into its metrics
    /// registry: the resolver's sink is composed with the [`Metrics`]
    /// engine subscriber, so a caller-installed sink (e.g. `--trace-out`
    /// JSONL) keeps receiving every event as well.
    pub fn with_config(
        mut resolver: OnlineAdaLsh,
        rule: MatchRule,
        snapshot_path: Option<PathBuf>,
        config: PipelineConfig,
    ) -> Self {
        let metrics = Metrics::new();
        let composed = resolver.trace().with(metrics.engine_subscriber());
        resolver.set_trace(composed);
        let pipeline = Pipeline::start(
            resolver,
            rule,
            snapshot_path.clone(),
            config,
            metrics.pipeline(),
        );
        Self {
            pipeline,
            metrics,
            snapshot_path,
        }
    }

    /// The service's metrics registry (the server layer records request
    /// latencies into it).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Routes one request to its handler. Returns the endpoint label
    /// used in metrics alongside the response.
    pub fn handle(&self, request: &Request) -> (&'static str, Response) {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => ("/healthz", self.healthz()),
            ("GET", "/topk") => ("/topk", self.topk(request)),
            ("GET", "/metrics") => ("/metrics", Response::text(200, self.metrics.render())),
            ("POST", "/ingest") => ("/ingest", self.ingest(request)),
            ("POST", "/snapshot") => ("/snapshot", self.snapshot()),
            (_, "/healthz" | "/topk" | "/metrics" | "/ingest" | "/snapshot") => (
                "unmatched",
                Response::error(405, &format!("method {} not allowed here", request.method)),
            ),
            (_, path) => (
                "unmatched",
                Response::error(404, &format!("no route for {path}")),
            ),
        }
    }

    /// Liveness: one `Arc` clone of the published snapshot, no locks.
    fn healthz(&self) -> Response {
        let snapshot = self.pipeline.current();
        let body = Value::Map(vec![
            ("status".to_string(), Value::Str("ok".to_string())),
            ("records".to_string(), Value::U64(snapshot.records as u64)),
            ("epoch".to_string(), Value::U64(snapshot.epoch)),
        ]);
        json_ok(&body)
    }

    /// `GET /topk?k=N[&wait_epoch=E][&min_records=R]`: serves the first
    /// `N` clusters of the published snapshot (resolved at `resolve_k`;
    /// the canonical cluster order makes that prefix exactly the
    /// top-`N` answer). The optional barriers park until the published
    /// epoch / record count reaches the floor — plain reads clone an
    /// `Arc` and return.
    fn topk(&self, request: &Request) -> Response {
        let k: usize = match request.query_param("k") {
            None => return Response::error(400, "missing required query parameter k"),
            Some(raw) => match raw.parse() {
                Ok(k) if k >= 1 => k,
                Ok(_) => return Response::error(400, "k must be at least 1"),
                Err(e) => return Response::error(400, &format!("bad k '{raw}': {e}")),
            },
        };
        let resolve_k = self.pipeline.resolve_k();
        if k > resolve_k {
            return Response::error(
                400,
                &format!(
                    "k={k} exceeds the server's resolve depth {resolve_k}; \
                     restart with a larger --resolve-k to serve deeper answers"
                ),
            );
        }
        let wait_epoch = match parse_u64_param(request, "wait_epoch") {
            Ok(v) => v.unwrap_or(0),
            Err(response) => return response,
        };
        let min_records = match parse_u64_param(request, "min_records") {
            Ok(v) => v.unwrap_or(0),
            Err(response) => return response,
        };

        let mut snapshot = self.pipeline.current();
        if snapshot.epoch < wait_epoch || (snapshot.records as u64) < min_records {
            if !self.pipeline.wait_until(wait_epoch, min_records) {
                let current = self.pipeline.current();
                return Response::error(
                    408,
                    &format!(
                        "barrier not reached before timeout: published epoch {} / {} records, \
                         needed epoch >= {wait_epoch} and records >= {min_records}",
                        current.epoch, current.records
                    ),
                );
            }
            snapshot = self.pipeline.current();
        }
        json_ok(&topk_value(&snapshot, k))
    }

    /// `POST /ingest`: schema-validated batch intake into the bounded
    /// pipeline queue. The batch is atomic — one bad record rejects the
    /// whole request and nothing is reserved. An accepted batch is
    /// answered *before* it is applied; the response carries the epoch
    /// at which it becomes visible (read-your-writes via
    /// `GET /topk?wait_epoch=<visible_epoch>`).
    fn ingest(&self, request: &Request) -> Response {
        let body = match request.body_utf8() {
            Ok(text) => text,
            Err(e) => return Response::error(400, &e),
        };
        let parsed: Value = match serde_json::from_str(body) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("body is not valid JSON: {e}")),
        };
        let Some(records_value) = parsed.get("records") else {
            return Response::error(400, "body must be an object with a 'records' array");
        };
        let records = match Vec::<Record>::from_value(records_value) {
            Ok(r) => r,
            Err(e) => return Response::error(400, &format!("bad record in 'records': {e}")),
        };
        if records.is_empty() {
            return Response::error(400, "'records' must not be empty");
        }

        match self.pipeline.submit(records) {
            Ok(accepted) => {
                self.metrics.observe_ingest(accepted.ids.len());
                let body = Value::Map(vec![
                    ("ids".to_string(), accepted.ids.to_value()),
                    ("count".to_string(), Value::U64(accepted.ids.len() as u64)),
                    (
                        "visible_epoch".to_string(),
                        Value::U64(accepted.visible_epoch),
                    ),
                    (
                        "read_your_writes".to_string(),
                        Value::Str(format!(
                            "GET /topk?k=<k>&wait_epoch={} blocks until this batch is visible",
                            accepted.visible_epoch
                        )),
                    ),
                ]);
                json_ok(&body)
            }
            Err(SubmitError::Invalid(message)) => Response::error(400, &message),
            Err(SubmitError::Overloaded { retry_after_secs }) => {
                let body = Value::Map(vec![
                    (
                        "error".to_string(),
                        Value::Str("ingest queue full; the batch was NOT accepted".to_string()),
                    ),
                    (
                        "retry_after_seconds".to_string(),
                        Value::U64(retry_after_secs),
                    ),
                    (
                        "read_your_writes".to_string(),
                        Value::Str(
                            "nothing was reserved: retrying the identical request is safe"
                                .to_string(),
                        ),
                    ),
                ]);
                match serde_json::to_string(&body) {
                    Ok(text) => Response::json(503, text)
                        .with_header("Retry-After", retry_after_secs.to_string()),
                    Err(e) => Response::error(500, &format!("response serialization failed: {e}")),
                }
            }
            Err(SubmitError::ShuttingDown) => {
                Response::error(503, "server is shutting down; batch not accepted")
            }
        }
    }

    /// `POST /snapshot`: the resolver thread persists at the next epoch
    /// boundary; readers are never blocked, only this caller waits.
    fn snapshot(&self) -> Response {
        let Some(path) = &self.snapshot_path else {
            return Response::error(
                400,
                "snapshotting is disabled: start the server with --snapshot-out <path>",
            );
        };
        match self.pipeline.snapshot() {
            Ok(done) => {
                let body = Value::Map(vec![
                    ("path".to_string(), Value::Str(path.display().to_string())),
                    ("records".to_string(), Value::U64(done.records as u64)),
                    ("epoch".to_string(), Value::U64(done.epoch)),
                ]);
                json_ok(&body)
            }
            Err(e) => Response::error(500, &e),
        }
    }
}

/// Parses an optional non-negative integer query parameter.
fn parse_u64_param(request: &Request, name: &str) -> Result<Option<u64>, Response> {
    match request.query_param(name) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|e| Response::error(400, &format!("bad {name} '{raw}': {e}"))),
    }
}

/// Renders a value as a 200 JSON response.
fn json_ok(value: &Value) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(200, body),
        Err(e) => Response::error(500, &format!("response serialization failed: {e}")),
    }
}

/// JSON shape of a `/topk` answer, assembled from the published
/// snapshot: the first `k` clusters plus the resolve pass's stats and
/// provenance (`epoch`, `records`, `resolve_k`).
fn topk_value(snapshot: &ResolvedSnapshot, k: usize) -> Value {
    let clusters: Vec<Vec<u32>> = snapshot.clusters.iter().take(k).cloned().collect();
    Value::Map(vec![
        ("k".to_string(), Value::U64(k as u64)),
        ("epoch".to_string(), Value::U64(snapshot.epoch)),
        ("records".to_string(), Value::U64(snapshot.records as u64)),
        (
            "resolve_k".to_string(),
            Value::U64(snapshot.resolve_k as u64),
        ),
        ("clusters".to_string(), clusters.to_value()),
        ("stats".to_string(), snapshot.stats.to_value()),
        (
            "wall_micros".to_string(),
            Value::U64(snapshot.resolve_wall.as_micros() as u64),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_core::AdaLshConfig;
    use adalsh_data::{Dataset, FieldDistance, FieldKind, FieldValue, Schema, ShingleSet};

    fn shingle_record(items: &[u64]) -> Record {
        Record::single(FieldValue::Shingles(ShingleSet::new(items.to_vec())))
    }

    fn test_service() -> Service {
        let schema = Schema::single("s", FieldKind::Shingles);
        let records: Vec<Record> = (0..8)
            .map(|i| shingle_record(&[i, i + 1, i + 2, 100]))
            .collect();
        let labels = (0..8).map(|i| i as u32 / 2).collect();
        let dataset = Dataset::new(schema, records, labels);
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.6);
        let resolver = OnlineAdaLsh::new(&dataset, AdaLshConfig::new(rule.clone())).unwrap();
        Service::new(resolver, rule, None)
    }

    fn get(path: &str) -> Request {
        let (path, query) = match path.split_once('?') {
            None => (path.to_string(), Vec::new()),
            Some((p, qs)) => (
                p.to_string(),
                qs.split('&')
                    .map(|kv| {
                        let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
                        (k.to_string(), v.to_string())
                    })
                    .collect(),
            ),
        };
        Request {
            method: "GET".to_string(),
            path,
            query,
            body: Vec::new(),
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            query: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn healthz_reports_record_count_and_epoch() {
        let service = test_service();
        let (endpoint, response) = service.handle(&get("/healthz"));
        assert_eq!(endpoint, "/healthz");
        assert_eq!(response.status, 200);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("\"records\":8"), "{text}");
        assert!(text.contains("\"epoch\":0"), "{text}");
    }

    #[test]
    fn topk_requires_a_valid_k_within_resolve_depth() {
        let service = test_service();
        assert_eq!(service.handle(&get("/topk")).1.status, 400);
        assert_eq!(service.handle(&get("/topk?k=0")).1.status, 400);
        assert_eq!(service.handle(&get("/topk?k=nope")).1.status, 400);
        // Deeper than the configured resolve_k cannot be served from the
        // published snapshot.
        assert_eq!(service.handle(&get("/topk?k=1000")).1.status, 400);
        assert_eq!(service.handle(&get("/topk?k=2&wait_epoch=x")).1.status, 400);
        let ok = service.handle(&get("/topk?k=2")).1;
        assert_eq!(ok.status, 200);
        let text = String::from_utf8(ok.body).unwrap();
        assert!(text.contains("\"clusters\":"), "{text}");
        assert!(text.contains("\"hash_evals\":"), "{text}");
        assert!(text.contains("\"epoch\":0"), "{text}");
    }

    #[test]
    fn topk_wait_epoch_observes_a_prior_ingest() {
        let service = test_service();
        let good = "{\"records\":[{\"fields\":[{\"Shingles\":[1,2,3]}]},\
                     {\"fields\":[{\"Shingles\":[4,5,6]}]}]}";
        let response = service.handle(&post("/ingest", good)).1;
        assert_eq!(response.status, 200);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("\"visible_epoch\":1"), "{text}");

        let read = service.handle(&get("/topk?k=2&wait_epoch=1")).1;
        assert_eq!(read.status, 200);
        let text = String::from_utf8(read.body).unwrap();
        assert!(text.contains("\"records\":10"), "{text}");

        let read = service.handle(&get("/topk?k=2&min_records=10")).1;
        assert_eq!(read.status, 200);
    }

    #[test]
    fn ingest_validates_and_is_atomic() {
        let service = test_service();
        // Not JSON.
        assert_eq!(service.handle(&post("/ingest", "nope")).1.status, 400);
        // JSON but wrong shape.
        assert_eq!(service.handle(&post("/ingest", "{}")).1.status, 400);
        assert_eq!(
            service
                .handle(&post("/ingest", "{\"records\":[]}"))
                .1
                .status,
            400
        );
        // Second record violates the schema (two fields) — nothing lands.
        let bad = "{\"records\":[{\"fields\":[{\"Shingles\":[1,2]}]},\
                    {\"fields\":[{\"Shingles\":[1]},{\"Shingles\":[2]}]}]}";
        assert_eq!(service.handle(&post("/ingest", bad)).1.status, 400);
        let health = String::from_utf8(service.handle(&get("/healthz")).1.body).unwrap();
        assert!(health.contains("\"records\":8"), "{health}");

        // A clean batch is accepted; ids and the visibility epoch come
        // back in order (the rejected batch burned neither).
        let good = "{\"records\":[{\"fields\":[{\"Shingles\":[1,2,3]}]},\
                     {\"fields\":[{\"Shingles\":[4,5,6]}]}]}";
        let response = service.handle(&post("/ingest", good)).1;
        assert_eq!(response.status, 200);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("\"ids\":[8,9]"), "{text}");
        assert!(text.contains("\"count\":2"), "{text}");
        assert!(text.contains("\"visible_epoch\":1"), "{text}");
        assert!(text.contains("read_your_writes"), "{text}");
    }

    #[test]
    fn unknown_routes_and_methods_are_structured_errors() {
        let service = test_service();
        let (endpoint, response) = service.handle(&get("/nope"));
        assert_eq!(endpoint, "unmatched");
        assert_eq!(response.status, 404);
        assert!(String::from_utf8(response.body)
            .unwrap()
            .contains("\"error\""));
        assert_eq!(service.handle(&post("/topk", "")).1.status, 405);
        assert_eq!(service.handle(&get("/ingest")).1.status, 405);
    }

    #[test]
    fn snapshot_without_a_path_is_rejected() {
        let service = test_service();
        let response = service.handle(&post("/snapshot", "")).1;
        assert_eq!(response.status, 400);
    }
}
