//! Request routing and the resolver lock discipline.
//!
//! One [`Mutex`] guards the [`OnlineAdaLsh`]: ingest mutates the record
//! set, queries mutate per-record hash states (Property 4's persistent
//! progress), and snapshots need a consistent view — so all three
//! serialize on the same lock. Everything else is deliberately kept off
//! that lock: `/healthz` answers from a lock-free record counter, and
//! `/metrics` renders from its own atomics, so liveness probes and
//! scrapes never stall behind a long query.
//!
//! Handlers never panic across the service boundary: schema violations,
//! malformed JSON, bad parameters, and snapshot failures all map to
//! structured `{"error": …}` responses with the appropriate status.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use adalsh_core::{FilterOutput, OnlineAdaLsh};
use adalsh_data::{MatchRule, Record};
use serde::{Deserialize, Serialize, Value};

use crate::http::{Request, Response};
use crate::metrics::Metrics;
use crate::snapshot::ServeSnapshot;

/// Default cap on request bodies (`/ingest` batches), in bytes.
pub const DEFAULT_MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// The resolver service behind the HTTP layer.
pub struct Service {
    resolver: Mutex<OnlineAdaLsh>,
    rule: MatchRule,
    metrics: Metrics,
    /// Mirror of the resolver's record count for lock-free `/healthz`.
    record_count: AtomicU64,
    /// Where `POST /snapshot` persists state (absent → snapshot disabled).
    snapshot_path: Option<PathBuf>,
}

impl Service {
    /// Wraps a resolver configured with `rule`. The service folds the
    /// engine's trace events into its metrics registry: the resolver's
    /// sink is composed with the [`Metrics`] engine subscriber, so a
    /// caller-installed sink (e.g. `--trace-out` JSONL) keeps receiving
    /// every event as well.
    pub fn new(
        mut resolver: OnlineAdaLsh,
        rule: MatchRule,
        snapshot_path: Option<PathBuf>,
    ) -> Self {
        let metrics = Metrics::new();
        let composed = resolver.trace().with(metrics.engine_subscriber());
        resolver.set_trace(composed);
        let record_count = AtomicU64::new(resolver.len() as u64);
        Self {
            resolver: Mutex::new(resolver),
            rule,
            metrics,
            record_count,
            snapshot_path,
        }
    }

    /// The service's metrics registry (the server layer records request
    /// latencies into it).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Routes one request to its handler. Returns the endpoint label
    /// used in metrics alongside the response.
    pub fn handle(&self, request: &Request) -> (&'static str, Response) {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => ("/healthz", self.healthz()),
            ("GET", "/topk") => ("/topk", self.topk(request)),
            ("GET", "/metrics") => ("/metrics", Response::text(200, self.metrics.render())),
            ("POST", "/ingest") => ("/ingest", self.ingest(request)),
            ("POST", "/snapshot") => ("/snapshot", self.snapshot()),
            (_, "/healthz" | "/topk" | "/metrics" | "/ingest" | "/snapshot") => (
                "unmatched",
                Response::error(405, &format!("method {} not allowed here", request.method)),
            ),
            (_, path) => (
                "unmatched",
                Response::error(404, &format!("no route for {path}")),
            ),
        }
    }

    /// Liveness: served from an atomic, never touches the resolver lock.
    fn healthz(&self) -> Response {
        let body = Value::Map(vec![
            ("status".to_string(), Value::Str("ok".to_string())),
            (
                "records".to_string(),
                Value::U64(self.record_count.load(Ordering::Relaxed)),
            ),
        ]);
        json_ok(&body)
    }

    /// `GET /topk?k=N`: runs the adaptive filter over everything
    /// ingested so far.
    fn topk(&self, request: &Request) -> Response {
        let k: usize = match request.query_param("k") {
            None => return Response::error(400, "missing required query parameter k"),
            Some(raw) => match raw.parse() {
                Ok(k) if k >= 1 => k,
                Ok(_) => return Response::error(400, "k must be at least 1"),
                Err(e) => return Response::error(400, &format!("bad k '{raw}': {e}")),
            },
        };
        let output = {
            let mut resolver = lock_unpoisoned(&self.resolver);
            resolver.query(k)
        };
        self.metrics.observe_query_stats(&output.stats);
        json_ok(&filter_output_value(&output, k))
    }

    /// `POST /ingest`: schema-validated batch intake. The batch is
    /// atomic — one bad record rejects the whole request and the
    /// resolver is left unchanged.
    fn ingest(&self, request: &Request) -> Response {
        let body = match request.body_utf8() {
            Ok(text) => text,
            Err(e) => return Response::error(400, &e),
        };
        let parsed: Value = match serde_json::from_str(body) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("body is not valid JSON: {e}")),
        };
        let Some(records_value) = parsed.get("records") else {
            return Response::error(400, "body must be an object with a 'records' array");
        };
        let records = match Vec::<Record>::from_value(records_value) {
            Ok(r) => r,
            Err(e) => return Response::error(400, &format!("bad record in 'records': {e}")),
        };
        if records.is_empty() {
            return Response::error(400, "'records' must not be empty");
        }

        let ids = {
            let mut resolver = lock_unpoisoned(&self.resolver);
            match resolver.extend(records) {
                Ok(ids) => ids,
                Err(e) => return Response::error(400, &e),
            }
        };
        self.record_count
            .fetch_add(ids.len() as u64, Ordering::Relaxed);
        self.metrics.observe_ingest(ids.len());
        let body = Value::Map(vec![
            ("ids".to_string(), ids.to_value()),
            ("count".to_string(), Value::U64(ids.len() as u64)),
        ]);
        json_ok(&body)
    }

    /// `POST /snapshot`: persists the full resolver state atomically.
    fn snapshot(&self) -> Response {
        let Some(path) = &self.snapshot_path else {
            return Response::error(
                400,
                "snapshotting is disabled: start the server with --snapshot-out <path>",
            );
        };
        let snapshot = {
            let resolver = lock_unpoisoned(&self.resolver);
            ServeSnapshot::capture(&resolver, self.rule.clone())
        };
        let records = snapshot.resolver.records.len();
        if let Err(e) = snapshot.save(path) {
            return Response::error(500, &e);
        }
        let body = Value::Map(vec![
            ("path".to_string(), Value::Str(path.display().to_string())),
            ("records".to_string(), Value::U64(records as u64)),
        ]);
        json_ok(&body)
    }
}

/// Renders a value as a 200 JSON response.
fn json_ok(value: &Value) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(200, body),
        Err(e) => Response::error(500, &format!("response serialization failed: {e}")),
    }
}

/// JSON shape of a query answer. `FilterOutput` holds a `Duration`, so
/// the value is assembled by hand instead of derived.
fn filter_output_value(output: &FilterOutput, k: usize) -> Value {
    Value::Map(vec![
        ("k".to_string(), Value::U64(k as u64)),
        ("clusters".to_string(), output.clusters.to_value()),
        ("stats".to_string(), output.stats.to_value()),
        (
            "wall_micros".to_string(),
            Value::U64(output.wall.as_micros() as u64),
        ),
    ])
}

/// Locks a mutex, recovering from poisoning: a worker that panicked
/// mid-request must not take the whole service down with it.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_core::AdaLshConfig;
    use adalsh_data::{Dataset, FieldDistance, FieldKind, FieldValue, Schema, ShingleSet};

    fn shingle_record(items: &[u64]) -> Record {
        Record::single(FieldValue::Shingles(ShingleSet::new(items.to_vec())))
    }

    fn test_service() -> Service {
        let schema = Schema::single("s", FieldKind::Shingles);
        let records: Vec<Record> = (0..8)
            .map(|i| shingle_record(&[i, i + 1, i + 2, 100]))
            .collect();
        let labels = (0..8).map(|i| i as u32 / 2).collect();
        let dataset = Dataset::new(schema, records, labels);
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.6);
        let resolver = OnlineAdaLsh::new(&dataset, AdaLshConfig::new(rule.clone())).unwrap();
        Service::new(resolver, rule, None)
    }

    fn get(path: &str) -> Request {
        let (path, query) = match path.split_once('?') {
            None => (path.to_string(), Vec::new()),
            Some((p, qs)) => (
                p.to_string(),
                qs.split('&')
                    .map(|kv| {
                        let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
                        (k.to_string(), v.to_string())
                    })
                    .collect(),
            ),
        };
        Request {
            method: "GET".to_string(),
            path,
            query,
            body: Vec::new(),
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            query: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn healthz_reports_record_count() {
        let service = test_service();
        let (endpoint, response) = service.handle(&get("/healthz"));
        assert_eq!(endpoint, "/healthz");
        assert_eq!(response.status, 200);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("\"records\":8"), "{text}");
    }

    #[test]
    fn topk_requires_a_valid_k() {
        let service = test_service();
        assert_eq!(service.handle(&get("/topk")).1.status, 400);
        assert_eq!(service.handle(&get("/topk?k=0")).1.status, 400);
        assert_eq!(service.handle(&get("/topk?k=nope")).1.status, 400);
        let ok = service.handle(&get("/topk?k=2")).1;
        assert_eq!(ok.status, 200);
        let text = String::from_utf8(ok.body).unwrap();
        assert!(text.contains("\"clusters\":"), "{text}");
        assert!(text.contains("\"hash_evals\":"), "{text}");
    }

    #[test]
    fn ingest_validates_and_is_atomic() {
        let service = test_service();
        // Not JSON.
        assert_eq!(service.handle(&post("/ingest", "nope")).1.status, 400);
        // JSON but wrong shape.
        assert_eq!(service.handle(&post("/ingest", "{}")).1.status, 400);
        assert_eq!(
            service
                .handle(&post("/ingest", "{\"records\":[]}"))
                .1
                .status,
            400
        );
        // Second record violates the schema (two fields) — nothing lands.
        let bad = "{\"records\":[{\"fields\":[{\"Shingles\":[1,2]}]},\
                    {\"fields\":[{\"Shingles\":[1]},{\"Shingles\":[2]}]}]}";
        assert_eq!(service.handle(&post("/ingest", bad)).1.status, 400);
        let health = String::from_utf8(service.handle(&get("/healthz")).1.body).unwrap();
        assert!(health.contains("\"records\":8"), "{health}");

        // A clean batch is accepted and ids come back in order.
        let good = "{\"records\":[{\"fields\":[{\"Shingles\":[1,2,3]}]},\
                     {\"fields\":[{\"Shingles\":[4,5,6]}]}]}";
        let response = service.handle(&post("/ingest", good)).1;
        assert_eq!(response.status, 200);
        let text = String::from_utf8(response.body).unwrap();
        assert!(text.contains("\"ids\":[8,9]"), "{text}");
        assert!(text.contains("\"count\":2"), "{text}");
    }

    #[test]
    fn unknown_routes_and_methods_are_structured_errors() {
        let service = test_service();
        let (endpoint, response) = service.handle(&get("/nope"));
        assert_eq!(endpoint, "unmatched");
        assert_eq!(response.status, 404);
        assert!(String::from_utf8(response.body)
            .unwrap()
            .contains("\"error\""));
        assert_eq!(service.handle(&post("/topk", "")).1.status, 405);
        assert_eq!(service.handle(&get("/ingest")).1.status, 405);
    }

    #[test]
    fn snapshot_without_a_path_is_rejected() {
        let service = test_service();
        let response = service.handle(&post("/snapshot", "")).1;
        assert_eq!(response.status, 400);
    }
}
