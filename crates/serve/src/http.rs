//! Minimal HTTP/1.1 over `std::net`: request parsing and response
//! writing for the resolver service.
//!
//! Deliberately small: one request per connection (`Connection: close`),
//! `Content-Length` framing only (no chunked bodies), no keep-alive, no
//! TLS. Robustness over features: header and body sizes are bounded,
//! socket timeouts are set by the accept loop before a byte is read, and
//! every parse failure maps to a structured JSON error response instead
//! of a dropped connection or a panic.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line plus all header bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string (e.g. `/topk`).
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Raw request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The request body as UTF-8 text.
    ///
    /// # Errors
    /// Fails on invalid UTF-8.
    pub fn body_utf8(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("body is not valid UTF-8: {e}"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// Malformed request line, headers, or framing → `400`.
    Bad(String),
    /// Declared body exceeds the configured limit → `413`.
    TooLarge {
        /// The limit that was exceeded, in bytes.
        limit: usize,
    },
    /// Socket-level failure (including read timeouts).
    Io(std::io::Error),
}

/// Reads and parses one request from the stream.
///
/// # Errors
/// See [`RequestError`]; timeouts surface as [`RequestError::Io`] with
/// kind `TimedOut`/`WouldBlock`.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, RequestError> {
    let clone = stream.try_clone().map_err(RequestError::Io)?;
    let mut reader = BufReader::new(clone);
    let mut header_bytes = 0usize;

    let request_line = read_line_bounded(&mut reader, &mut header_bytes)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Bad("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Bad("request line missing target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| RequestError::Bad("request line missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Bad(format!(
            "unsupported protocol '{version}'"
        )));
    }

    let mut content_length = 0usize;
    loop {
        let line = read_line_bounded(&mut reader, &mut header_bytes)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Bad(format!("malformed header '{line}'")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|e| RequestError::Bad(format!("bad Content-Length: {e}")))?;
        }
    }
    if content_length > max_body {
        return Err(RequestError::TooLarge { limit: max_body });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(RequestError::Io)?;

    let (path, query) = parse_target(target);
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// Reads one CRLF/LF-terminated line, charging against the header budget.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    used: &mut usize,
) -> Result<String, RequestError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(RequestError::Io)?;
    if n == 0 {
        return Err(RequestError::Bad("connection closed mid-request".into()));
    }
    *used += n;
    if *used > MAX_HEADER_BYTES {
        return Err(RequestError::Bad(format!(
            "headers exceed {MAX_HEADER_BYTES} bytes"
        )));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Splits a request target into path and query pairs. Values are taken
/// verbatim (no percent-decoding — the service's parameters are plain
/// integers and paths).
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, qs)) => {
            let query = qs
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (kv.to_string(), String::new()),
                })
                .collect();
            (path.to_string(), query)
        }
    }
}

/// An HTTP response about to be written.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status code (200, 400, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond the framing set (e.g. `Retry-After`).
    pub headers: Vec<(&'static str, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from pre-rendered text.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Adds one extra response header (builder-style).
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.headers.push((name, value));
        self
    }

    /// The structured error shape every failure returns:
    /// `{"error": "<message>"}`.
    pub fn error(status: u16, message: &str) -> Self {
        let body = serde::Value::Map(vec![(
            "error".to_string(),
            serde::Value::Str(message.to_string()),
        )]);
        Self::json(
            status,
            serde_json::to_string(&body).unwrap_or_else(|_| "{\"error\":\"error\"}".into()),
        )
    }
}

/// Writes a response and flushes. Every response closes the connection.
///
/// # Errors
/// Propagates socket errors (including write timeouts).
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// Canonical reason phrase for the status codes the service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_parsing_splits_path_and_query() {
        let (path, query) = parse_target("/topk?k=5&x=y&flag");
        assert_eq!(path, "/topk");
        assert_eq!(
            query,
            vec![
                ("k".to_string(), "5".to_string()),
                ("x".to_string(), "y".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
        let (path, query) = parse_target("/healthz");
        assert_eq!(path, "/healthz");
        assert!(query.is_empty());
    }

    #[test]
    fn error_response_is_structured_json() {
        let r = Response::error(400, "bad \"thing\"");
        assert_eq!(r.status, 400);
        let text = String::from_utf8(r.body).unwrap();
        assert_eq!(text, "{\"error\":\"bad \\\"thing\\\"\"}");
    }

    #[test]
    fn with_header_appends_extra_headers() {
        let r = Response::error(503, "queue full").with_header("Retry-After", "1".to_string());
        assert_eq!(r.headers, vec![("Retry-After", "1".to_string())]);
    }

    #[test]
    fn reason_phrases_cover_service_codes() {
        for code in [200, 400, 404, 405, 408, 413, 500, 503] {
            assert_ne!(status_reason(code), "Unknown");
        }
    }
}
