//! Durable snapshots of the serving state.
//!
//! A snapshot file is the JSON of [`ServeSnapshot`]: a format version,
//! the match rule the engine was configured with, and the resolver's
//! full [`OnlineSnapshot`] (records, labels, per-record hash states,
//! bootstrap prefix length). Restoring under the same rule rebuilds a
//! bit-identical engine, so a restarted server answers its first query
//! without re-hashing a single already-hashed record.
//!
//! Writes are atomic: the JSON is written to a `.tmp` sibling and then
//! renamed over the target, so a crash mid-snapshot never corrupts the
//! previous snapshot.

use std::path::Path;

use adalsh_core::{AdaLshConfig, MinhashScheme, OnlineAdaLsh, OnlineSnapshot};
use adalsh_data::MatchRule;
use serde::{Deserialize, Serialize};

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Everything persisted by `POST /snapshot` / loaded by `--resume`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The match rule the resolver was configured with. Stored so a
    /// resume under a different rule is rejected instead of silently
    /// rebuilding a different engine (which would invalidate every
    /// persisted hash state).
    pub rule: MatchRule,
    /// MinHash evaluation scheme the hash states were computed under.
    /// Classic and DOPH values are incompatible, so restore rebuilds the
    /// engine under the persisted scheme (serde-defaulted to `classic`
    /// for snapshots written before the field existed — those were
    /// always classic).
    #[serde(default)]
    pub scheme: MinhashScheme,
    /// The resolver state proper.
    pub resolver: OnlineSnapshot,
}

impl ServeSnapshot {
    /// Captures the state of a resolver configured with `rule`.
    pub fn capture(resolver: &OnlineAdaLsh, rule: MatchRule) -> Self {
        Self {
            version: SNAPSHOT_VERSION,
            rule,
            scheme: resolver.config().minhash_scheme,
            resolver: resolver.snapshot(),
        }
    }

    /// Restores a resolver, verifying version and rule agreement.
    ///
    /// `config` must be the configuration the restarted server would use
    /// anyway; its rule is checked against the persisted one, and its
    /// MinHash scheme is overridden by the persisted one (hash states
    /// only make sense under the scheme that computed them).
    ///
    /// # Errors
    /// Fails on version or rule mismatch, or on an inconsistent resolver
    /// snapshot (see [`OnlineAdaLsh::from_snapshot`]).
    pub fn restore(self, mut config: AdaLshConfig) -> Result<OnlineAdaLsh, String> {
        if self.version != SNAPSHOT_VERSION {
            return Err(format!(
                "snapshot version {} unsupported (expected {SNAPSHOT_VERSION})",
                self.version
            ));
        }
        if self.rule != config.rule {
            return Err(format!(
                "snapshot was taken under rule {:?} but the server is configured with {:?}; \
                 resuming would rebuild a different engine and invalidate every hash state",
                self.rule, config.rule
            ));
        }
        config.minhash_scheme = self.scheme;
        OnlineAdaLsh::from_snapshot(self.resolver, config)
    }

    /// Serializes and atomically writes the snapshot to `path`.
    ///
    /// # Errors
    /// Fails on serialization or filesystem errors.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let json = serde_json::to_string(self).map_err(|e| format!("serialize snapshot: {e}"))?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json.as_bytes())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))?;
        Ok(())
    }

    /// Reads and parses a snapshot file.
    ///
    /// # Errors
    /// Fails on filesystem or parse errors.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))
    }
}
