//! Durable snapshots of the serving state.
//!
//! A snapshot file is the JSON of [`ServeSnapshot`]: a format version,
//! the match rule the engine was configured with, and the resolver's
//! full [`OnlineSnapshot`] (records, labels, per-record hash states,
//! bootstrap prefix length). Restoring under the same rule rebuilds a
//! bit-identical engine, so a restarted server answers its first query
//! without re-hashing a single already-hashed record.
//!
//! Writes are atomic *and durable*: the JSON is written to a `.tmp`
//! sibling, fsynced, renamed over the target, and the parent directory
//! is fsynced — so a crash (or power loss) mid-snapshot never corrupts
//! the previous snapshot, and a completed `POST /snapshot` response
//! means the bytes and the rename have both reached disk. A failed
//! write removes its `.tmp` sibling instead of leaving it behind.

use std::path::Path;

use adalsh_core::{AdaLshConfig, MinhashScheme, OnlineAdaLsh, OnlineSnapshot};
use adalsh_data::MatchRule;
use serde::{Deserialize, Serialize};

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Everything persisted by `POST /snapshot` / loaded by `--resume`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The match rule the resolver was configured with. Stored so a
    /// resume under a different rule is rejected instead of silently
    /// rebuilding a different engine (which would invalidate every
    /// persisted hash state).
    pub rule: MatchRule,
    /// MinHash evaluation scheme the hash states were computed under.
    /// Classic and DOPH values are incompatible, so restore rebuilds the
    /// engine under the persisted scheme (serde-defaulted to `classic`
    /// for snapshots written before the field existed — those were
    /// always classic).
    #[serde(default)]
    pub scheme: MinhashScheme,
    /// The resolver state proper.
    pub resolver: OnlineSnapshot,
}

impl ServeSnapshot {
    /// Captures the state of a resolver configured with `rule`.
    pub fn capture(resolver: &OnlineAdaLsh, rule: MatchRule) -> Self {
        Self {
            version: SNAPSHOT_VERSION,
            rule,
            scheme: resolver.config().minhash_scheme,
            resolver: resolver.snapshot(),
        }
    }

    /// Restores a resolver, verifying version and rule agreement.
    ///
    /// `config` must be the configuration the restarted server would use
    /// anyway; its rule is checked against the persisted one, and its
    /// MinHash scheme is overridden by the persisted one (hash states
    /// only make sense under the scheme that computed them).
    ///
    /// # Errors
    /// Fails on version or rule mismatch, or on an inconsistent resolver
    /// snapshot (see [`OnlineAdaLsh::from_snapshot`]).
    pub fn restore(self, mut config: AdaLshConfig) -> Result<OnlineAdaLsh, String> {
        if self.version != SNAPSHOT_VERSION {
            return Err(format!(
                "snapshot version {} unsupported (expected {SNAPSHOT_VERSION})",
                self.version
            ));
        }
        if self.rule != config.rule {
            return Err(format!(
                "snapshot was taken under rule {:?} but the server is configured with {:?}; \
                 resuming would rebuild a different engine and invalidate every hash state",
                self.rule, config.rule
            ));
        }
        config.minhash_scheme = self.scheme;
        OnlineAdaLsh::from_snapshot(self.resolver, config)
    }

    /// Serializes and atomically writes the snapshot to `path`,
    /// fsyncing the temp file before the rename and the parent
    /// directory after it. On any failure the `.tmp` sibling is
    /// removed — a failed snapshot leaves no debris next to the
    /// (still intact) previous snapshot.
    ///
    /// # Errors
    /// Fails on serialization or filesystem errors.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let json = serde_json::to_string(self).map_err(|e| format!("serialize snapshot: {e}"))?;
        let tmp = path.with_extension("tmp");
        let result = write_durably(&tmp, path, json.as_bytes());
        if result.is_err() {
            // Best-effort cleanup; the original error is what matters.
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Reads and parses a snapshot file.
    ///
    /// # Errors
    /// Fails on filesystem or parse errors.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))
    }
}

/// Write `bytes` to `tmp`, fsync it, rename onto `path`, and fsync the
/// parent directory so the rename itself is durable. (On non-Unix
/// targets directory fsync is skipped — opening a directory for sync is
/// a Unix capability.)
fn write_durably(tmp: &Path, path: &Path, bytes: &[u8]) -> Result<(), String> {
    use std::io::Write;
    let mut file =
        std::fs::File::create(tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
    file.write_all(bytes)
        .map_err(|e| format!("write {}: {e}", tmp.display()))?;
    file.sync_all()
        .map_err(|e| format!("fsync {}: {e}", tmp.display()))?;
    drop(file);
    std::fs::rename(tmp, path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))?;
    #[cfg(unix)]
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        let dir = std::fs::File::open(parent)
            .map_err(|e| format!("open directory {}: {e}", parent.display()))?;
        dir.sync_all()
            .map_err(|e| format!("fsync directory {}: {e}", parent.display()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_data::{Dataset, FieldDistance, FieldKind, FieldValue, Record, Schema, ShingleSet};

    fn test_snapshot() -> ServeSnapshot {
        let schema = Schema::single("s", FieldKind::Shingles);
        let records: Vec<Record> = (0..4)
            .map(|i| Record::single(FieldValue::Shingles(ShingleSet::new(vec![i, i + 1, 100]))))
            .collect();
        let labels = (0..4).map(|i| i as u32 / 2).collect();
        let dataset = Dataset::new(schema, records, labels);
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.6);
        let resolver = OnlineAdaLsh::new(&dataset, AdaLshConfig::new(rule.clone())).unwrap();
        ServeSnapshot::capture(&resolver, rule)
    }

    #[test]
    fn save_is_durable_and_roundtrips() {
        let dir = std::env::temp_dir().join(format!("adalsh-snap-ok-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let snapshot = test_snapshot();
        snapshot.save(&path).unwrap();
        assert!(
            !path.with_extension("tmp").exists(),
            "a successful save leaves no temp sibling"
        );
        let loaded = ServeSnapshot::load(&path).unwrap();
        assert_eq!(loaded.resolver.records.len(), 4);
        // Overwrite is just as atomic: the second save replaces in place.
        snapshot.save(&path).unwrap();
        assert!(!path.with_extension("tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A save that fails after the temp file was written (here: the
    /// rename target is a non-empty directory) must clean up its `.tmp`
    /// sibling — a crash-prone snapshot path must not accumulate debris
    /// alongside the intact previous snapshot.
    #[test]
    fn failed_save_never_leaves_the_temp_file_behind() {
        let dir = std::env::temp_dir().join(format!("adalsh-snap-fail-{}", std::process::id()));
        // The target path IS a non-empty directory: rename must fail.
        let target = dir.join("snap.json");
        std::fs::create_dir_all(target.join("occupied")).unwrap();
        let err = test_snapshot().save(&target).unwrap_err();
        assert!(err.contains("rename"), "{err}");
        assert!(
            !target.with_extension("tmp").exists(),
            "failed save must remove its temp file"
        );
        assert!(target.is_dir(), "the failing target is untouched");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
