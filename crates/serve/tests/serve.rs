//! End-to-end tests: a real server on an ephemeral port, driven over
//! raw TCP.
//!
//! The load-bearing assertions mirror the crate's contract:
//!
//! 1. the answer served on `/topk` after an HTTP ingest burst (made
//!    visible via the `wait_epoch` read-your-writes barrier) is
//!    **bit-identical** to the batch `Pairs` oracle run on the same
//!    record snapshot;
//! 2. `POST /snapshot` → restart with resume → `/topk` returns the same
//!    answer with **zero** additional hash evaluations for
//!    already-hashed records;
//! 3. malformed traffic gets structured JSON errors, never a dropped
//!    connection or a crash;
//! 4. N writers and M readers hammering the server concurrently still
//!    converge to the Pairs-oracle answer, and a snapshot taken during
//!    the churn restores bit-identically;
//! 5. a full ingest queue sheds batches with `503` + `Retry-After`, and
//!    the accepted-batch ledger reconciles exactly with the final
//!    record count — accepted batches are never dropped;
//! 6. reads complete from the published snapshot while the resolver is
//!    busy applying a large batch — the read path takes no lock.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use adalsh_core::algorithm::FilterMethod;
use adalsh_core::{AdaLshConfig, OnlineAdaLsh, Pairs};
use adalsh_data::{
    Dataset, FieldDistance, FieldKind, FieldValue, MatchRule, Record, Schema, ShingleSet,
};
use adalsh_serve::{PipelineConfig, ServeSnapshot, Server, ServerConfig, Service};
use serde::{Deserialize, Serialize, Value};

fn record(core: u64, noise: u64) -> Record {
    let mut s: Vec<u64> = (0..15).map(|i| core * 1000 + i).collect();
    s.push(core * 1000 + 500 + noise % 4);
    Record::single(FieldValue::Shingles(ShingleSet::new(s)))
}

fn bootstrap() -> Dataset {
    let schema = Schema::single("s", FieldKind::Shingles);
    let records: Vec<Record> = (0..20).map(|i| record(i % 4, i)).collect();
    let gt = (0..20).map(|i| (i % 4) as u32).collect();
    Dataset::new(schema, records, gt)
}

fn rule() -> MatchRule {
    MatchRule::threshold(0, FieldDistance::Jaccard, 0.4)
}

fn start_server(snapshot_path: Option<std::path::PathBuf>) -> (Server, Arc<Service>) {
    let resolver = OnlineAdaLsh::new(&bootstrap(), AdaLshConfig::new(rule())).unwrap();
    start_server_with(resolver, snapshot_path, ServerConfig::default())
}

fn start_server_with(
    resolver: OnlineAdaLsh,
    snapshot_path: Option<std::path::PathBuf>,
    config: ServerConfig,
) -> (Server, Arc<Service>) {
    start_server_pipelined(resolver, snapshot_path, config, PipelineConfig::default())
}

fn start_server_pipelined(
    resolver: OnlineAdaLsh,
    snapshot_path: Option<std::path::PathBuf>,
    config: ServerConfig,
    pipeline: PipelineConfig,
) -> (Server, Arc<Service>) {
    let service = Arc::new(Service::with_config(
        resolver,
        rule(),
        snapshot_path,
        pipeline,
    ));
    let server = Server::start(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
    (server, service)
}

/// Sends one raw HTTP/1.1 request and returns `(status, headers, body)`.
fn http_full(addr: SocketAddr, raw: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {response:?}"));
    let (head, body) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, head, body)
}

/// Sends one raw HTTP/1.1 request and returns `(status, body)`.
fn http(addr: SocketAddr, raw: &str) -> (u16, String) {
    let (status, _, body) = http_full(addr, raw);
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let (status, _, body) = post_full(addr, path, body);
    (status, body)
}

fn post_full(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    http_full(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// The `/ingest` body for a batch of records.
fn ingest_body(records: &[Record]) -> String {
    let value = Value::Map(vec![("records".to_string(), records.to_value())]);
    serde_json::to_string(&value).unwrap()
}

fn parse(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

fn clusters_of(topk_body: &str) -> Vec<Vec<u32>> {
    let value = parse(topk_body);
    Vec::<Vec<u32>>::from_value(value.get("clusters").expect("clusters field")).unwrap()
}

fn hash_evals_of(topk_body: &str) -> u64 {
    let value = parse(topk_body);
    u64::from_value(value.get("stats").unwrap().get("hash_evals").unwrap()).unwrap()
}

fn u64_field(body: &str, field: &str) -> u64 {
    u64::from_value(
        parse(body)
            .get(field)
            .unwrap_or_else(|| panic!("{field} in {body}")),
    )
    .unwrap()
}

#[test]
fn ingest_then_topk_matches_batch_pairs_oracle() {
    let (server, _service) = start_server(None);
    let addr = server.local_addr();

    // Liveness before any traffic: the boot snapshot is published
    // synchronously, so the record count and epoch are correct at once.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"records\":20"), "{body}");
    assert!(body.contains("\"epoch\":0"), "{body}");

    // Ingest a burst over HTTP: 9 records growing entity 7. The
    // response names the epoch at which the batch becomes visible.
    let burst: Vec<Record> = (0..9).map(|i| record(7, i)).collect();
    let (status, body) = post(addr, "/ingest", &ingest_body(&burst));
    assert_eq!(status, 200, "{body}");
    let ids = Vec::<u32>::from_value(parse(&body).get("ids").unwrap()).unwrap();
    assert_eq!(ids, (20..29).collect::<Vec<u32>>());
    let visible_epoch = u64_field(&body, "visible_epoch");
    assert_eq!(visible_epoch, 1);

    // Read-your-writes: the barrier parks until the batch is applied.
    let (status, body) = get(addr, &format!("/topk?k=2&wait_epoch={visible_epoch}"));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"records\":29"), "{body}");
    let served = clusters_of(&body);

    // Batch oracle on the identical record snapshot.
    let snapshot_records: Vec<Record> = bootstrap()
        .records()
        .iter()
        .cloned()
        .chain(burst.iter().cloned())
        .collect();
    let n = snapshot_records.len();
    let oracle_dataset = Dataset::new(
        Schema::single("s", FieldKind::Shingles),
        snapshot_records,
        vec![0; n],
    );
    let gold = Pairs::new(rule()).filter(&oracle_dataset, 2);

    assert_eq!(
        served, gold.clusters,
        "served top-k must be bit-identical to the batch Pairs oracle"
    );
    assert_eq!(
        served[0].len(),
        9,
        "entity 7's burst is the largest cluster"
    );

    // Metrics reflect the traffic served so far.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("adalsh_ingested_records_total 9"),
        "{metrics}"
    );
    assert!(
        metrics.contains("adalsh_requests_total{endpoint=\"/topk\",status=\"200\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("adalsh_request_seconds_bucket"),
        "{metrics}"
    );
    assert!(
        !metrics.contains("adalsh_hash_evals_total 0\n"),
        "{metrics}"
    );
    // The pipeline families chart the ingest flow: one batch accepted,
    // applied in one resolve pass, published as epoch 1, queue drained.
    assert!(metrics.contains("adalsh_published_epoch 1"), "{metrics}");
    assert!(
        metrics.contains("adalsh_applied_batches_total 1"),
        "{metrics}"
    );
    assert!(metrics.contains("adalsh_ingest_queue_depth 0"), "{metrics}");
    assert!(
        metrics.contains("adalsh_resolve_batch_records_count 1"),
        "{metrics}"
    );
    // Boot publish + one batch publish.
    assert!(
        metrics.contains("adalsh_publish_seconds_count 2"),
        "{metrics}"
    );
    assert!(
        metrics.contains("adalsh_rejected_batches_total 0"),
        "{metrics}"
    );
    // The engine's trace events fold into the same scrape: the resolve
    // pass's level-1 sweep emits at least one hash_round observation.
    assert!(
        metrics.contains("adalsh_engine_hash_round_seconds_bucket"),
        "{metrics}"
    );
    assert!(
        !metrics.contains("adalsh_engine_hash_round_seconds_count 0\n"),
        "{metrics}"
    );
    assert!(
        metrics.contains("adalsh_engine_pairwise_block_seconds_bucket"),
        "{metrics}"
    );
    assert!(
        metrics.contains("adalsh_engine_gate_decisions_total"),
        "{metrics}"
    );

    server.shutdown();
}

#[test]
fn snapshot_restart_resumes_without_rehashing() {
    let path = std::env::temp_dir().join(format!("adalsh-serve-test-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let (server, _service) = start_server(Some(path.clone()));
    let addr = server.local_addr();

    let burst: Vec<Record> = (0..6).map(|i| record(2, 40 + i)).collect();
    let (status, body) = post(addr, "/ingest", &ingest_body(&burst));
    assert_eq!(status, 200);
    let visible_epoch = u64_field(&body, "visible_epoch");

    // The resolve pass that applied the burst pays the hashing; its
    // published answer is the reference.
    let (_, first_body) = get(addr, &format!("/topk?k=2&wait_epoch={visible_epoch}"));
    let first_clusters = clusters_of(&first_body);
    assert!(hash_evals_of(&first_body) > 0, "cold resolve must hash");

    // Persist and stop. The snapshot lands at an epoch boundary and
    // reports which epoch it captured.
    let (status, body) = post(addr, "/snapshot", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"records\":26"), "{body}");
    assert!(body.contains("\"epoch\":1"), "{body}");
    server.shutdown();

    // Restart from disk under the same rule.
    let restored = ServeSnapshot::load(&path)
        .unwrap()
        .restore(AdaLshConfig::new(rule()))
        .unwrap();
    let (server, _service) = start_server_with(restored, None, ServerConfig::default());
    let addr = server.local_addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"records\":26"), "{body}");

    // Same answer, zero additional hash evaluations: every persisted
    // hash state lined up with the rebuilt engine, and the boot resolve
    // (published synchronously) found nothing left to hash.
    let (status, resumed_body) = get(addr, "/topk?k=2");
    assert_eq!(status, 200);
    assert_eq!(clusters_of(&resumed_body), first_clusters);
    assert_eq!(
        hash_evals_of(&resumed_body),
        0,
        "resumed server must not re-hash already-hashed records"
    );

    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn malformed_traffic_gets_structured_errors() {
    let config = ServerConfig {
        max_body_bytes: 256,
        ..ServerConfig::default()
    };
    let resolver = OnlineAdaLsh::new(&bootstrap(), AdaLshConfig::new(rule())).unwrap();
    let (server, _service) = start_server_with(resolver, None, config);
    let addr = server.local_addr();

    // Unknown route.
    let (status, body) = get(addr, "/nope");
    assert_eq!(status, 404);
    assert!(parse(&body).get("error").is_some(), "{body}");

    // Wrong method on a known route.
    let (status, body) = post(addr, "/topk", "");
    assert_eq!(status, 405);
    assert!(parse(&body).get("error").is_some(), "{body}");

    // Body that is not JSON.
    let (status, body) = post(addr, "/ingest", "definitely not json");
    assert_eq!(status, 400);
    assert!(parse(&body).get("error").is_some(), "{body}");

    // Schema-violating batch is atomic: nothing lands.
    let bad = "{\"records\":[{\"fields\":[{\"Shingles\":[1]},{\"Shingles\":[2]}]}]}";
    let (status, body) = post(addr, "/ingest", bad);
    assert_eq!(status, 400, "{body}");
    let (_, health) = get(addr, "/healthz");
    assert!(health.contains("\"records\":20"), "{health}");

    // Barrier parameters must parse.
    let (status, body) = get(addr, "/topk?k=2&wait_epoch=soon");
    assert_eq!(status, 400);
    assert!(parse(&body).get("error").is_some(), "{body}");

    // k beyond the resolve depth cannot be served from the snapshot.
    let (status, body) = get(addr, "/topk?k=999");
    assert_eq!(status, 400);
    assert!(body.contains("resolve"), "{body}");

    // Declared body above the configured cap.
    let oversize = "x".repeat(512);
    let (status, body) = post(addr, "/ingest", &oversize);
    assert_eq!(status, 413);
    assert!(parse(&body).get("error").is_some(), "{body}");

    // Garbage request line.
    let (status, body) = http(addr, "BOGUS\r\n\r\n");
    assert_eq!(status, 400);
    assert!(parse(&body).get("error").is_some(), "{body}");

    // The server is still healthy after all of it.
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);

    server.shutdown();
}

/// Satellite: N writer threads and M reader threads hammer the server
/// concurrently (with a snapshot mid-churn); the final clusters are
/// bit-identical to a sequential batch Pairs-oracle run over the same
/// records in id order, and the mid-churn snapshot restores to a
/// consistent prefix of that history.
#[test]
fn concurrent_ingest_topk_snapshot_converges_to_pairs_oracle() {
    const WRITERS: u64 = 4;
    const BATCHES_PER_WRITER: u64 = 5;
    const RECORDS_PER_BATCH: u64 = 3;

    let path = std::env::temp_dir().join(format!(
        "adalsh-serve-concurrent-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let (server, _service) = start_server(Some(path.clone()));
    let addr = server.local_addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    // M = 2 readers: every read must succeed, lock-free, while writers
    // churn. They assert invariants, not specific contents.
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let (status, body) = get(addr, "/topk?k=4");
                    assert_eq!(status, 200, "{body}");
                    let (status, health) = get(addr, "/healthz");
                    assert_eq!(status, 200, "{health}");
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    // One snapshot request racing the writers.
    let snapshotter = std::thread::spawn(move || {
        let (status, body) = post(addr, "/snapshot", "");
        assert_eq!(status, 200, "{body}");
    });

    // N = 4 writers, each sending its own batches; a writer retries on
    // 503 (the retry is idempotent: nothing was reserved). Each returns
    // its (ids, records) ledger.
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut ledger: Vec<(Vec<u32>, Vec<Record>)> = Vec::new();
                for b in 0..BATCHES_PER_WRITER {
                    let batch: Vec<Record> = (0..RECORDS_PER_BATCH)
                        .map(|r| record((w * BATCHES_PER_WRITER + b) % 6, w * 100 + b * 10 + r))
                        .collect();
                    let body = ingest_body(&batch);
                    loop {
                        let (status, response) = post(addr, "/ingest", &body);
                        if status == 200 {
                            let ids = Vec::<u32>::from_value(parse(&response).get("ids").unwrap())
                                .unwrap();
                            assert_eq!(ids.len(), batch.len());
                            ledger.push((ids, batch.clone()));
                            break;
                        }
                        assert_eq!(status, 503, "only overload may reject: {response}");
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                }
                ledger
            })
        })
        .collect();

    let mut ledger: Vec<(Vec<u32>, Vec<Record>)> = Vec::new();
    for writer in writers {
        ledger.extend(writer.join().expect("writer panicked"));
    }
    snapshotter.join().expect("snapshotter panicked");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for reader in readers {
        assert!(reader.join().expect("reader panicked") > 0);
    }

    // Reconstruct the exact record sequence from the returned ids: the
    // intake assigns ids in apply order, so placing every accepted
    // record at its id rebuilds the server's dataset.
    let total = 20 + (WRITERS * BATCHES_PER_WRITER * RECORDS_PER_BATCH) as usize;
    let mut records: Vec<Option<Record>> = vec![None; total];
    for (i, r) in bootstrap().records().iter().enumerate() {
        records[i] = Some(r.clone());
    }
    for (ids, batch) in &ledger {
        for (id, r) in ids.iter().zip(batch) {
            assert!(
                records[*id as usize].replace(r.clone()).is_none(),
                "id {id} assigned twice"
            );
        }
    }
    let records: Vec<Record> = records
        .into_iter()
        .map(|r| r.expect("every id in 0..total assigned exactly once"))
        .collect();

    // Read-your-writes on the total record count, then compare.
    let (status, body) = get(addr, &format!("/topk?k=4&min_records={total}"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(u64_field(&body, "records"), total as u64);
    let served = clusters_of(&body);

    let oracle_dataset = Dataset::new(
        Schema::single("s", FieldKind::Shingles),
        records,
        vec![0; total],
    );
    let gold = Pairs::new(rule()).filter(&oracle_dataset, 4);
    assert_eq!(
        served, gold.clusters,
        "concurrent ingest must converge to the sequential Pairs oracle"
    );

    // A final snapshot of the full history restores bit-identically:
    // same clusters, zero re-hashing.
    let (status, body) = post(addr, "/snapshot", "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(u64_field(&body, "records"), total as u64);
    let (_, full_body) = get(addr, "/topk?k=10");
    let full_clusters = clusters_of(&full_body);
    let mut restored = ServeSnapshot::load(&path)
        .unwrap()
        .restore(AdaLshConfig::new(rule()))
        .unwrap();
    let replay = restored.query_cached(10);
    assert_eq!(
        replay.clusters, full_clusters,
        "snapshot/resume round-trip must reproduce the served clusters"
    );
    assert_eq!(
        replay.stats.hash_evals, 0,
        "restored hash states leave nothing to re-hash"
    );

    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Satellite: a tiny ingest queue under a burst sheds load with `503` +
/// `Retry-After`, and the accepted-batch ledger reconciles exactly with
/// the final record count — no accepted batch is ever dropped, no
/// rejected batch ever lands.
#[test]
fn backpressure_sheds_with_retry_after_and_drops_nothing_accepted() {
    let resolver = OnlineAdaLsh::new(&bootstrap(), AdaLshConfig::new(rule())).unwrap();
    let (server, _service) = start_server_pipelined(
        resolver,
        None,
        ServerConfig {
            workers: 8,
            ..ServerConfig::default()
        },
        // cap 1 batch; one record per resolve pass keeps the drainer
        // slow enough that a burst must overflow the queue.
        PipelineConfig {
            queue_cap: 1,
            max_batch: 1,
            resolve_k: 4,
            ..PipelineConfig::default()
        },
    );
    let addr = server.local_addr();

    const BATCH_RECORDS: u64 = 200;
    let mut accepted_records = 0u64;
    let mut accepted_epochs: Vec<u64> = Vec::new();
    let mut rejected = 0u64;
    for i in 0..12u64 {
        // Large same-entity batches make every resolve pass grow a
        // quadratic pairwise cluster, so the drainer (one record batch
        // per pass, queue of one) cannot keep up with back-to-back
        // posts — the burst must overflow the queue.
        let batch: Vec<Record> = (0..BATCH_RECORDS)
            .map(|r| record(7, i * BATCH_RECORDS + r))
            .collect();
        let (status, head, body) = post_full(addr, "/ingest", &ingest_body(&batch));
        match status {
            200 => {
                accepted_records += BATCH_RECORDS;
                accepted_epochs.push(u64_field(&body, "visible_epoch"));
            }
            503 => {
                rejected += 1;
                assert!(
                    head.contains("Retry-After: 1"),
                    "503 must carry Retry-After: {head}"
                );
                assert!(
                    body.contains("retry_after_seconds"),
                    "structured overload body: {body}"
                );
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert!(
        rejected > 0,
        "a 1-slot queue must shed under a 12-batch burst"
    );
    assert!(!accepted_epochs.is_empty(), "some batches must land");

    // Epochs of accepted batches are strictly increasing: the ledger
    // has no duplicates and no holes burned by rejected batches.
    for pair in accepted_epochs.windows(2) {
        assert!(
            pair[0] < pair[1],
            "epochs must increase: {accepted_epochs:?}"
        );
    }
    assert_eq!(
        *accepted_epochs.last().unwrap() as usize,
        accepted_epochs.len(),
        "rejected batches must not consume epochs"
    );

    // Wait for the last accepted batch to be applied, then reconcile:
    // final record count == bootstrap + every accepted record.
    let expected = 20 + accepted_records;
    let (status, body) = get(
        addr,
        &format!("/topk?k=4&wait_epoch={}", accepted_epochs.last().unwrap()),
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        u64_field(&body, "records"),
        expected,
        "accepted-batch ledger must reconcile with the final record count"
    );

    let (_, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains(&format!("adalsh_ingested_records_total {accepted_records}")),
        "{metrics}"
    );
    assert!(
        metrics.contains(&format!("adalsh_rejected_batches_total {rejected}")),
        "{metrics}"
    );

    server.shutdown();
}

/// Satellite: the `/metrics` exposition is scrapeable by the book — the
/// response declares `Content-Type: text/plain; version=0.0.4`, and the
/// live body survives a full promtext round-trip with every histogram
/// family (including the span-backed `adalsh_ingest_to_visible_seconds`)
/// passing the cumulative-bucket invariants.
#[test]
fn metrics_exposition_declares_content_type_and_round_trips() {
    let (server, _service) = start_server(None);
    let addr = server.local_addr();

    let burst: Vec<Record> = (0..5).map(|i| record(3, i)).collect();
    let (status, body) = post(addr, "/ingest", &ingest_body(&burst));
    assert_eq!(status, 200, "{body}");
    let visible_epoch = u64_field(&body, "visible_epoch");
    let (status, body) = get(addr, &format!("/topk?k=2&wait_epoch={visible_epoch}"));
    assert_eq!(status, 200, "{body}");

    // The root ingest span (whose duration feeds ingest-to-visible)
    // finishes just after the visibility barrier fires, so poll for the
    // observation before asserting on the exposition.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let (head, exposition) = loop {
        let (status, head, exposition) =
            http_full(addr, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        if !exposition.contains("adalsh_ingest_to_visible_seconds_count 0") {
            break (head, exposition);
        }
        assert!(
            std::time::Instant::now() < deadline,
            "ingest-to-visible never observed: {exposition}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4"),
        "Prometheus scrapers key on the exposition version header: {head}"
    );

    let samples =
        adalsh_obs::promtext::parse(&exposition).unwrap_or_else(|e| panic!("{e}\n{exposition}"));
    assert!(!samples.is_empty());
    for family in [
        "adalsh_request_seconds",
        "adalsh_publish_seconds",
        "adalsh_resolve_batch_records",
        "adalsh_ingest_to_visible_seconds",
    ] {
        adalsh_obs::promtext::check_histogram(&samples, family)
            .unwrap_or_else(|e| panic!("{e}\n{exposition}"));
    }
    // The span layer fed the new families: one batch went end to end.
    let visible_count = samples
        .iter()
        .find(|s| s.name == "adalsh_ingest_to_visible_seconds_count")
        .expect("ingest-to-visible histogram")
        .value;
    assert!(visible_count >= 1.0, "{exposition}");
    assert!(
        samples.iter().any(|s| s.name == "adalsh_queue_age_seconds"),
        "{exposition}"
    );
    assert!(
        samples
            .iter()
            .any(|s| s.name == "adalsh_resolve_minor_page_faults_total"),
        "{exposition}"
    );

    server.shutdown();
}

/// Tentpole: `GET /debug/spans` serves the live span ring — after one
/// ingest made visible and one query, the ring holds the full ingest
/// span tree (root plus queue/coalesce/resolve/engine/publish children)
/// and the query root. The root span finishes *after* the visibility
/// barrier fires, so the ring is polled briefly.
#[test]
fn debug_spans_serves_the_ingest_span_tree() {
    let (server, _service) = start_server(None);
    let addr = server.local_addr();

    let burst: Vec<Record> = (0..6).map(|i| record(1, i)).collect();
    let (status, body) = post(addr, "/ingest", &ingest_body(&burst));
    assert_eq!(status, 200, "{body}");
    let visible_epoch = u64_field(&body, "visible_epoch");
    let (status, body) = get(addr, &format!("/topk?k=2&wait_epoch={visible_epoch}"));
    assert_eq!(status, 200, "{body}");

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let body = loop {
        let (status, body) = get(addr, "/debug/spans");
        assert_eq!(status, 200, "{body}");
        if body.contains("\"op\":\"ingest_batch\"") {
            break body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "ingest_batch root never reached the span ring: {body}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    let value = parse(&body);
    assert!(u64_field(&body, "count") > 0);
    assert!(value.get("spans").is_some(), "{body}");
    for op in [
        "queue_wait",
        "coalesce",
        "resolve",
        "hash_rounds",
        "pairwise",
        "publish",
        "topk_query",
    ] {
        assert!(body.contains(&format!("\"op\":\"{op}\"")), "{op}: {body}");
    }

    server.shutdown();
}

/// Acceptance: the span stream a live server emits is not just shaped
/// right — it reconciles bit-for-bit against the engine's own event
/// taxonomy. A `MemorySubscriber` installed under the service's sink
/// sees every event (engine events and spans alike); `schema::validate`
/// then checks tree integrity, exact window containment, and the
/// span↔segment linkage identities on the full stream.
#[test]
fn live_span_stream_validates_against_the_event_taxonomy() {
    let memory = Arc::new(adalsh_obs::MemorySubscriber::new());
    let mut resolver = OnlineAdaLsh::new(&bootstrap(), AdaLshConfig::new(rule())).unwrap();
    let composed = resolver.trace().with(Arc::clone(&memory) as _);
    resolver.set_trace(composed);
    let (server, _service) = start_server_with(resolver, None, ServerConfig::default());
    let addr = server.local_addr();

    let burst: Vec<Record> = (0..7).map(|i| record(5, i)).collect();
    let (status, body) = post(addr, "/ingest", &ingest_body(&burst));
    assert_eq!(status, 200, "{body}");
    let visible_epoch = u64_field(&body, "visible_epoch");
    let (status, body) = get(addr, &format!("/topk?k=2&wait_epoch={visible_epoch}"));
    assert_eq!(status, 200, "{body}");

    // Wait for the root ingest span (finished after the barrier fires).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let events = loop {
        let events = memory.events();
        if events
            .iter()
            .any(|e| e.name == "span" && e.str("op") == Some("ingest_batch"))
        {
            break events;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "ingest_batch span never emitted"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };

    let report = adalsh_obs::schema::validate(&events).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(report.runs, 2, "boot resolve + one ingest pass");
    let spans: Vec<&adalsh_obs::OwnedEvent> = events.iter().filter(|e| e.name == "span").collect();
    let ops: Vec<&str> = spans.iter().filter_map(|s| s.str("op")).collect();
    for op in [
        "ingest_batch",
        "queue_wait",
        "resolve",
        "hash_rounds",
        "pairwise",
        "publish",
        "topk_query",
    ] {
        assert!(ops.contains(&op), "missing span op {op} in {ops:?}");
    }
    // The engine children link the ingest pass's segment (boot is 1).
    let segment_of = |op: &str| {
        spans
            .iter()
            .find(|s| s.str("op") == Some(op))
            .and_then(|s| s.u64("segment"))
    };
    assert_eq!(segment_of("hash_rounds"), Some(2));
    assert_eq!(segment_of("pairwise"), Some(2));

    server.shutdown();
}

/// Acceptance: `GET /topk` and `GET /metrics` acquire no mutex on the
/// request path. While the resolver thread is busy applying a large
/// same-entity batch (quadratic pairwise work), plain reads keep
/// answering from the previously published epoch.
#[test]
fn reads_complete_while_resolver_is_busy() {
    let (server, _service) = start_server(None);
    let addr = server.local_addr();

    // One batch big enough that its resolve pass takes a while: 1200
    // same-entity records mean ~0.7M pairwise comparisons in one pass.
    let big: Vec<Record> = (0..1200).map(|i| record(9, i)).collect();
    let (status, body) = post(addr, "/ingest", &ingest_body(&big));
    assert_eq!(status, 200, "{body}");
    let visible_epoch = u64_field(&body, "visible_epoch");

    // The ingest reply races the resolver's pass. Immediately read,
    // without barriers: every read must answer promptly from the
    // published snapshot; the first reads land while the resolver still
    // churns, proving they did not wait on it.
    let mut saw_pre_batch_epoch = false;
    for _ in 0..5 {
        let (status, body) = get(addr, "/topk?k=2");
        assert_eq!(status, 200, "{body}");
        if u64_field(&body, "epoch") < visible_epoch {
            saw_pre_batch_epoch = true;
        }
        let (status, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(metrics.contains("adalsh_requests_total"), "{metrics}");
        let (status, health) = get(addr, "/healthz");
        assert_eq!(status, 200, "{health}");
    }
    assert!(
        saw_pre_batch_epoch,
        "reads issued right after ingest must answer from the old epoch \
         instead of waiting for the resolver"
    );

    // The batch still becomes visible afterwards.
    let (status, body) = get(addr, &format!("/topk?k=2&wait_epoch={visible_epoch}"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(u64_field(&body, "records"), 20 + 1200);

    server.shutdown();
}
