//! End-to-end tests: a real server on an ephemeral port, driven over
//! raw TCP.
//!
//! The load-bearing assertions mirror the crate's contract:
//!
//! 1. the answer served on `/topk` after an HTTP ingest burst is
//!    **bit-identical** to the batch `Pairs` oracle run on the same
//!    record snapshot;
//! 2. `POST /snapshot` → restart with resume → `/topk` returns the same
//!    answer with **zero** additional hash evaluations for
//!    already-hashed records;
//! 3. malformed traffic gets structured JSON errors, never a dropped
//!    connection or a crash.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use adalsh_core::algorithm::FilterMethod;
use adalsh_core::{AdaLshConfig, OnlineAdaLsh, Pairs};
use adalsh_data::{
    Dataset, FieldDistance, FieldKind, FieldValue, MatchRule, Record, Schema, ShingleSet,
};
use adalsh_serve::{ServeSnapshot, Server, ServerConfig, Service};
use serde::{Deserialize, Serialize, Value};

fn record(core: u64, noise: u64) -> Record {
    let mut s: Vec<u64> = (0..15).map(|i| core * 1000 + i).collect();
    s.push(core * 1000 + 500 + noise % 4);
    Record::single(FieldValue::Shingles(ShingleSet::new(s)))
}

fn bootstrap() -> Dataset {
    let schema = Schema::single("s", FieldKind::Shingles);
    let records: Vec<Record> = (0..20).map(|i| record(i % 4, i)).collect();
    let gt = (0..20).map(|i| (i % 4) as u32).collect();
    Dataset::new(schema, records, gt)
}

fn rule() -> MatchRule {
    MatchRule::threshold(0, FieldDistance::Jaccard, 0.4)
}

fn start_server(snapshot_path: Option<std::path::PathBuf>) -> (Server, Arc<Service>) {
    let resolver = OnlineAdaLsh::new(&bootstrap(), AdaLshConfig::new(rule())).unwrap();
    start_server_with(resolver, snapshot_path, ServerConfig::default())
}

fn start_server_with(
    resolver: OnlineAdaLsh,
    snapshot_path: Option<std::path::PathBuf>,
    config: ServerConfig,
) -> (Server, Arc<Service>) {
    let service = Arc::new(Service::new(resolver, rule(), snapshot_path));
    let server = Server::start(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
    (server, service)
}

/// Sends one raw HTTP/1.1 request and returns `(status, body)`.
fn http(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// The `/ingest` body for a batch of records.
fn ingest_body(records: &[Record]) -> String {
    let value = Value::Map(vec![("records".to_string(), records.to_value())]);
    serde_json::to_string(&value).unwrap()
}

fn parse(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

fn clusters_of(topk_body: &str) -> Vec<Vec<u32>> {
    let value = parse(topk_body);
    Vec::<Vec<u32>>::from_value(value.get("clusters").expect("clusters field")).unwrap()
}

fn hash_evals_of(topk_body: &str) -> u64 {
    let value = parse(topk_body);
    u64::from_value(value.get("stats").unwrap().get("hash_evals").unwrap()).unwrap()
}

#[test]
fn ingest_then_topk_matches_batch_pairs_oracle() {
    let (server, _service) = start_server(None);
    let addr = server.local_addr();

    // Liveness before any traffic.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"records\":20"), "{body}");

    // Ingest a burst over HTTP: 9 records growing entity 7.
    let burst: Vec<Record> = (0..9).map(|i| record(7, i)).collect();
    let (status, body) = post(addr, "/ingest", &ingest_body(&burst));
    assert_eq!(status, 200, "{body}");
    let ids = Vec::<u32>::from_value(parse(&body).get("ids").unwrap()).unwrap();
    assert_eq!(ids, (20..29).collect::<Vec<u32>>());

    // Query the service.
    let (status, body) = get(addr, "/topk?k=2");
    assert_eq!(status, 200, "{body}");
    let served = clusters_of(&body);

    // Batch oracle on the identical record snapshot.
    let snapshot_records: Vec<Record> = bootstrap()
        .records()
        .iter()
        .cloned()
        .chain(burst.iter().cloned())
        .collect();
    let n = snapshot_records.len();
    let oracle_dataset = Dataset::new(
        Schema::single("s", FieldKind::Shingles),
        snapshot_records,
        vec![0; n],
    );
    let gold = Pairs::new(rule()).filter(&oracle_dataset, 2);

    assert_eq!(
        served, gold.clusters,
        "served top-k must be bit-identical to the batch Pairs oracle"
    );
    assert_eq!(
        served[0].len(),
        9,
        "entity 7's burst is the largest cluster"
    );

    // Metrics reflect the traffic served so far.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("adalsh_ingested_records_total 9"),
        "{metrics}"
    );
    assert!(
        metrics.contains("adalsh_requests_total{endpoint=\"/topk\",status=\"200\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("adalsh_request_seconds_bucket"),
        "{metrics}"
    );
    assert!(
        !metrics.contains("adalsh_hash_evals_total 0\n"),
        "{metrics}"
    );
    // The engine's trace events fold into the same scrape: the query's
    // level-1 sweep emits at least one hash_round observation.
    assert!(
        metrics.contains("adalsh_engine_hash_round_seconds_bucket"),
        "{metrics}"
    );
    assert!(
        !metrics.contains("adalsh_engine_hash_round_seconds_count 0\n"),
        "{metrics}"
    );
    assert!(
        metrics.contains("adalsh_engine_pairwise_block_seconds_bucket"),
        "{metrics}"
    );
    assert!(
        metrics.contains("adalsh_engine_gate_decisions_total"),
        "{metrics}"
    );

    server.shutdown();
}

#[test]
fn snapshot_restart_resumes_without_rehashing() {
    let path = std::env::temp_dir().join(format!("adalsh-serve-test-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let (server, _service) = start_server(Some(path.clone()));
    let addr = server.local_addr();

    let burst: Vec<Record> = (0..6).map(|i| record(2, 40 + i)).collect();
    let (status, _) = post(addr, "/ingest", &ingest_body(&burst));
    assert_eq!(status, 200);

    // First query pays the hashing; its answer is the reference.
    let (_, first_body) = get(addr, "/topk?k=2");
    let first_clusters = clusters_of(&first_body);
    assert!(hash_evals_of(&first_body) > 0, "cold query must hash");

    // Persist and stop.
    let (status, body) = post(addr, "/snapshot", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"records\":26"), "{body}");
    server.shutdown();

    // Restart from disk under the same rule.
    let restored = ServeSnapshot::load(&path)
        .unwrap()
        .restore(AdaLshConfig::new(rule()))
        .unwrap();
    let (server, _service) = start_server_with(restored, None, ServerConfig::default());
    let addr = server.local_addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"records\":26"), "{body}");

    // Same answer, zero additional hash evaluations: every persisted
    // hash state lined up with the rebuilt engine.
    let (status, resumed_body) = get(addr, "/topk?k=2");
    assert_eq!(status, 200);
    assert_eq!(clusters_of(&resumed_body), first_clusters);
    assert_eq!(
        hash_evals_of(&resumed_body),
        0,
        "resumed server must not re-hash already-hashed records"
    );

    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn malformed_traffic_gets_structured_errors() {
    let config = ServerConfig {
        max_body_bytes: 256,
        ..ServerConfig::default()
    };
    let resolver = OnlineAdaLsh::new(&bootstrap(), AdaLshConfig::new(rule())).unwrap();
    let (server, _service) = start_server_with(resolver, None, config);
    let addr = server.local_addr();

    // Unknown route.
    let (status, body) = get(addr, "/nope");
    assert_eq!(status, 404);
    assert!(parse(&body).get("error").is_some(), "{body}");

    // Wrong method on a known route.
    let (status, body) = post(addr, "/topk", "");
    assert_eq!(status, 405);
    assert!(parse(&body).get("error").is_some(), "{body}");

    // Body that is not JSON.
    let (status, body) = post(addr, "/ingest", "definitely not json");
    assert_eq!(status, 400);
    assert!(parse(&body).get("error").is_some(), "{body}");

    // Schema-violating batch is atomic: nothing lands.
    let bad = "{\"records\":[{\"fields\":[{\"Shingles\":[1]},{\"Shingles\":[2]}]}]}";
    let (status, body) = post(addr, "/ingest", bad);
    assert_eq!(status, 400, "{body}");
    let (_, health) = get(addr, "/healthz");
    assert!(health.contains("\"records\":20"), "{health}");

    // Declared body above the configured cap.
    let oversize = "x".repeat(512);
    let (status, body) = post(addr, "/ingest", &oversize);
    assert_eq!(status, 413);
    assert!(parse(&body).get("error").is_some(), "{body}");

    // Garbage request line.
    let (status, body) = http(addr, "BOGUS\r\n\r\n");
    assert_eq!(status, 400);
    assert!(parse(&body).get("error").is_some(), "{body}");

    // The server is still healthy after all of it.
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);

    server.shutdown();
}
