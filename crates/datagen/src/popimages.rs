//! PopularImages-like dataset (paper §6.3, §7.4.2).
//!
//! The real PopularImages datasets are 3 × 10000 images — transformed
//! copies (crop/scale/re-center) of 500 popular originals — compared by
//! the cosine distance of RGB histograms at 2°/3°/5° thresholds, with
//! Zipf exponents 1.05 / 1.1 / 1.2 controlling the entity sizes. This
//! generator reproduces the two properties §7.4.2 leans on:
//!
//! * **near-threshold clutter** — "for almost every image, there are
//!   images that refer to a different entity but have a similar
//!   histogram": entity base vectors are grouped around *archetypes*,
//!   separated by just a few degrees more than the largest threshold, so
//!   LSH needs sharp (large-`w`) schemes to tell entities apart;
//! * **tunable Zipf exponent** — the headline variable of Figure 16.
//!
//! Records are angular jitters of their entity's base vector (the
//! crop/scale proxy: small histogram perturbations ⇒ small angles).

use adalsh_data::{
    Dataset, DenseVector, FieldDistance, FieldKind, FieldValue, MatchRule, Record, Schema,
};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::zipf::zipf_sizes;

/// Configuration of the PopularImages-like generator.
#[derive(Debug, Clone, Copy)]
pub struct PopImagesConfig {
    /// Number of original images (entities). Paper: 500.
    pub num_entities: usize,
    /// Total records. Paper: 10000.
    pub num_records: usize,
    /// Histogram dimensionality (4×4×4 RGB ⇒ 64).
    pub dim: usize,
    /// Zipf exponent of entity sizes (paper: 1.05 / 1.1 / 1.2).
    pub zipf_exponent: f64,
    /// Number of histogram archetypes entities cluster around.
    pub num_archetypes: usize,
    /// Angle (degrees) between an entity base and its archetype.
    pub archetype_spread_deg: f64,
    /// Minimum pairwise angle (degrees) between entity bases — keep it
    /// above `threshold + 2·jitter` or ground truth becomes unreachable.
    pub min_base_separation_deg: f64,
    /// Max angular jitter (degrees) of a record around its base.
    pub jitter_deg: f64,
    /// Fraction of records that are *heavy transforms* (aggressive
    /// crops/rescales): their jitter is `heavy_multiplier × jitter_deg`.
    /// At strict thresholds these split off their entity — the effect
    /// behind Figure 17's F1 drop at 2°.
    pub heavy_transform_frac: f64,
    /// Jitter multiplier for heavy transforms.
    pub heavy_multiplier: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PopImagesConfig {
    fn default() -> Self {
        Self {
            num_entities: 250,
            num_records: 4000,
            dim: 64,
            zipf_exponent: 1.05,
            num_archetypes: 25,
            archetype_spread_deg: 13.0,
            // Must exceed max-threshold (5°) + 2 × heavy jitter (3.2°)
            // so ground truth stays reachable at every threshold.
            min_base_separation_deg: 12.0,
            jitter_deg: 0.8,
            heavy_transform_frac: 0.15,
            heavy_multiplier: 4.0,
            seed: 0x1_4A6E,
        }
    }
}

/// Angular match rule at `threshold_degrees` (paper: 2, 3, or 5).
pub fn match_rule(threshold_degrees: f64) -> MatchRule {
    MatchRule::threshold(0, FieldDistance::Angular, threshold_degrees / 180.0)
}

/// The single-field schema.
pub fn schema() -> Schema {
    Schema::single("histogram", FieldKind::Dense)
}

/// Generates a PopularImages-like dataset.
///
/// # Panics
/// Panics if base separation cannot be achieved (spread too small for
/// the requested separation).
pub fn generate(config: &PopImagesConfig) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let sizes = zipf_sizes(
        config.num_entities,
        config.num_records,
        config.zipf_exponent,
    );

    // Archetypes: random nonnegative unit vectors (histograms are
    // nonnegative, which concentrates angles and adds realism).
    let archetypes: Vec<Vec<f64>> = (0..config.num_archetypes)
        .map(|_| {
            let v: Vec<f64> = (0..config.dim).map(|_| rng.random::<f64>()).collect();
            normalize(v)
        })
        .collect();

    // Entity bases: spread around the archetypes, rejection-sampled to
    // keep pairwise separation.
    let min_sep = config.min_base_separation_deg.to_radians();
    let mut bases: Vec<Vec<f64>> = Vec::with_capacity(config.num_entities);
    for e in 0..config.num_entities {
        let archetype = &archetypes[e % config.num_archetypes];
        let mut attempts = 0;
        let base = loop {
            attempts += 1;
            assert!(
                attempts < 2000,
                "cannot separate entity bases; widen archetype_spread_deg"
            );
            // Random spread in (0.6..1.4)·spread keeps bases ring-like
            // around the archetype without collapsing onto it.
            let s = config.archetype_spread_deg.to_radians() * rng.random_range(0.6..1.4);
            let cand = rotate_towards_random(archetype, s, &mut rng);
            let ok = bases.iter().all(|b| angle_between(b, &cand) >= min_sep);
            if ok {
                break cand;
            }
        };
        bases.push(base);
    }

    let jitter = config.jitter_deg.to_radians();
    let mut records = Vec::with_capacity(config.num_records);
    let mut gt = Vec::with_capacity(config.num_records);
    for (e, &size) in sizes.iter().enumerate() {
        for _ in 0..size {
            let heavy = rng.random::<f64>() < config.heavy_transform_frac;
            let max = if heavy {
                jitter * config.heavy_multiplier
            } else {
                jitter
            };
            let a = rng.random_range(0.0..max);
            let v = rotate_towards_random(&bases[e], a, &mut rng);
            records.push(Record::single(FieldValue::Dense(DenseVector::new(v))));
            gt.push(e as u32);
        }
    }

    let mut order: Vec<usize> = (0..records.len()).collect();
    order.shuffle(&mut rng);
    let records = order.iter().map(|&i| records[i].clone()).collect();
    let gt = order.iter().map(|&i| gt[i]).collect();
    Dataset::new(schema(), records, gt)
}

fn normalize(v: Vec<f64>) -> Vec<f64> {
    let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    assert!(n > 0.0);
    v.into_iter().map(|x| x / n).collect()
}

fn angle_between(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    dot.clamp(-1.0, 1.0).acos()
}

/// Rotates unit vector `v` by angle `alpha` (radians) towards a random
/// orthogonal direction: `cos(α)·v + sin(α)·u` with `u ⊥ v`.
fn rotate_towards_random(v: &[f64], alpha: f64, rng: &mut rand::rngs::StdRng) -> Vec<f64> {
    // Gaussian direction, Gram-Schmidt against v.
    let g: Vec<f64> = (0..v.len()).map(|_| gaussian(rng)).collect();
    let proj: f64 = g.iter().zip(v).map(|(x, y)| x * y).sum();
    let mut u: Vec<f64> = g.iter().zip(v).map(|(x, y)| x - proj * y).collect();
    let n = u.iter().map(|x| x * x).sum::<f64>().sqrt();
    if n < 1e-12 {
        // Astronomically unlikely; fall back to the vector itself.
        return v.to_vec();
    }
    u.iter_mut().for_each(|x| *x /= n);
    v.iter()
        .zip(&u)
        .map(|(a, b)| alpha.cos() * a + alpha.sin() * b)
        .collect()
}

fn gaussian(rng: &mut rand::rngs::StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 > f64::EPSILON {
            let u2: f64 = rng.random();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PopImagesConfig {
        PopImagesConfig {
            num_entities: 30,
            num_records: 300,
            num_archetypes: 5,
            ..PopImagesConfig::default()
        }
    }

    fn angle_deg(d: &Dataset, a: u32, b: u32) -> f64 {
        d.record(a)
            .field(0)
            .as_dense()
            .angle_degrees(d.record(b).field(0).as_dense())
    }

    #[test]
    fn shape() {
        let d = generate(&small());
        assert_eq!(d.len(), 300);
        assert_eq!(d.num_entities(), 30);
        assert!(match_rule(3.0).validate(d.schema()).is_ok());
    }

    #[test]
    fn within_entity_angles_small() {
        let cfg = small();
        let d = generate(&cfg);
        let clusters = d.ground_truth_clusters();
        let bound = 2.0 * cfg.jitter_deg * cfg.heavy_multiplier;
        let c = &clusters[0];
        for i in 0..c.len().min(6) {
            for j in (i + 1)..c.len().min(6) {
                let a = angle_deg(&d, c[i], c[j]);
                assert!(a <= bound + 1e-6, "within-entity angle {a}°");
            }
        }
    }

    #[test]
    fn cross_entity_angles_exceed_separation() {
        let cfg = small();
        let d = generate(&cfg);
        let clusters = d.ground_truth_clusters();
        let bound = cfg.min_base_separation_deg - 2.0 * cfg.jitter_deg * cfg.heavy_multiplier;
        assert!(bound > 5.0, "config must keep cross-entity pairs above 5°");
        for a in 0..clusters.len().min(10) {
            for b in (a + 1)..clusters.len().min(10) {
                let ang = angle_deg(&d, clusters[a][0], clusters[b][0]);
                assert!(ang >= bound - 1e-6, "cross-entity angle {ang}° too small");
            }
        }
    }

    #[test]
    fn heavy_transforms_split_only_at_strict_thresholds() {
        // The fraction of records farther than 3° from any same-entity
        // record must be small but nonzero; none may be farther than 5°
        // from all of them (keeps F1 ordering 2° < 3° < 5° as in Fig. 17).
        let cfg = small();
        let d = generate(&cfg);
        let clusters = d.ground_truth_clusters();
        let mut beyond3 = 0usize;
        let mut total = 0usize;
        for c in clusters.iter().take(8).filter(|c| c.len() >= 3) {
            for &r in c {
                total += 1;
                let nearest = c
                    .iter()
                    .filter(|&&o| o != r)
                    .map(|&o| angle_deg(&d, r, o))
                    .fold(f64::INFINITY, f64::min);
                if nearest > 3.0 {
                    beyond3 += 1;
                }
                assert!(
                    nearest <= 2.0 * cfg.jitter_deg * cfg.heavy_multiplier + 1e-6,
                    "record {r} isolated by {nearest}°"
                );
            }
        }
        assert!(total > 20);
        let frac = beyond3 as f64 / total as f64;
        assert!(frac < 0.25, "too many heavy splits: {frac}");
    }

    #[test]
    fn near_threshold_clutter_exists() {
        // §7.4.2: most records should have *other-entity* records within
        // a few threshold-widths — the challenging regime.
        let cfg = PopImagesConfig {
            num_archetypes: 4,
            ..small()
        };
        let d = generate(&cfg);
        let clusters = d.ground_truth_clusters();
        let mut close_pairs = 0;
        let mut total = 0;
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                total += 1;
                if angle_deg(&d, clusters[a][0], clusters[b][0]) < 25.0 {
                    close_pairs += 1;
                }
            }
        }
        let frac = close_pairs as f64 / total as f64;
        assert!(frac > 0.2, "near-clutter fraction {frac}");
    }

    #[test]
    fn zipf_exponent_controls_top_entity() {
        let flat = generate(&PopImagesConfig {
            zipf_exponent: 1.05,
            ..small()
        });
        let steep = generate(&PopImagesConfig {
            zipf_exponent: 1.6,
            ..small()
        });
        assert!(steep.entity_sizes()[0] > flat.entity_sizes()[0]);
    }

    #[test]
    fn vectors_are_unit_norm() {
        let d = generate(&small());
        for i in 0..20u32 {
            let n = d.record(i).field(0).as_dense().norm();
            assert!((n - 1.0).abs() < 1e-9, "norm {n}");
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.ground_truth(), b.ground_truth());
    }

    #[test]
    fn rotate_produces_requested_angle() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let v = normalize(vec![1.0; 16]);
        for &deg in &[0.5f64, 3.0, 10.0, 45.0] {
            let w = rotate_towards_random(&v, deg.to_radians(), &mut rng);
            let got = angle_between(&v, &w).to_degrees();
            assert!((got - deg).abs() < 1e-6, "wanted {deg}°, got {got}°");
        }
    }
}
