//! The paper's Nx dataset scaling (§6.3).
//!
//! "To extend the original dataset, we uniformly at random select an
//! entity `a` and uniformly at random pick a record `rₐ` referring to
//! `a`, for each record added to the dataset." Note the two-stage
//! uniformity: entities are drawn uniformly (not size-weighted), so
//! scaling flattens the size distribution somewhat — small entities grow
//! as fast as large ones in absolute terms.

use adalsh_data::Dataset;
use rand::{Rng, SeedableRng};

/// Extends `dataset` to `target_len` records by the paper's process:
/// repeatedly duplicate a uniformly-chosen record of a uniformly-chosen
/// entity. Returns a new dataset; the original records keep their ids
/// `0..n`.
///
/// # Panics
/// Panics if `target_len < dataset.len()`.
pub fn upsample(dataset: &Dataset, target_len: usize, seed: u64) -> Dataset {
    assert!(
        target_len >= dataset.len(),
        "target must not shrink the dataset"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let clusters = dataset.ground_truth_clusters();
    let mut records: Vec<_> = dataset.records().to_vec();
    let mut gt: Vec<u32> = dataset.ground_truth().to_vec();
    while records.len() < target_len {
        let entity = &clusters[rng.random_range(0..clusters.len())];
        let rid = entity[rng.random_range(0..entity.len())];
        records.push(dataset.record(rid).clone());
        gt.push(dataset.entity_of(rid));
    }
    Dataset::new(dataset.schema().clone(), records, gt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_data::{FieldKind, FieldValue, Record, Schema, ShingleSet};

    fn toy() -> Dataset {
        let schema = Schema::single("s", FieldKind::Shingles);
        let mk = |v: u64| Record::single(FieldValue::Shingles(ShingleSet::new(vec![v])));
        Dataset::new(schema, vec![mk(1), mk(1), mk(2), mk(3)], vec![0, 0, 1, 2])
    }

    #[test]
    fn reaches_target_length() {
        let d = toy();
        let up = upsample(&d, 20, 7);
        assert_eq!(up.len(), 20);
    }

    #[test]
    fn prefix_is_the_original() {
        let d = toy();
        let up = upsample(&d, 10, 7);
        for i in 0..d.len() as u32 {
            assert_eq!(up.record(i), d.record(i));
            assert_eq!(up.entity_of(i), d.entity_of(i));
        }
    }

    #[test]
    fn added_records_are_copies_of_existing() {
        let d = toy();
        let up = upsample(&d, 30, 9);
        for i in d.len() as u32..30 {
            let rec = up.record(i);
            let entity = up.entity_of(i);
            assert!(
                (0..d.len() as u32).any(|j| d.record(j) == rec && d.entity_of(j) == entity),
                "record {i} is not a copy"
            );
        }
    }

    #[test]
    fn entity_set_is_preserved() {
        let d = toy();
        let up = upsample(&d, 50, 3);
        assert_eq!(up.num_entities(), d.num_entities());
    }

    #[test]
    fn uniform_entity_choice_flattens_distribution() {
        // Entity 0 starts with 2 of 4 records (50%); after heavy
        // upsampling its expected share tends to 1/3 (uniform over the
        // three entities).
        let d = toy();
        let up = upsample(&d, 4000, 11);
        let share = up.entity_sizes()[0] as f64 / up.len() as f64;
        assert!(
            (0.30..0.40).contains(&share),
            "top share {share} should approach 1/3"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let d = toy();
        let a = upsample(&d, 12, 5);
        let b = upsample(&d, 12, 5);
        assert_eq!(a.ground_truth(), b.ground_truth());
    }

    #[test]
    fn noop_when_target_equals_len() {
        let d = toy();
        let up = upsample(&d, 4, 1);
        assert_eq!(up.len(), 4);
    }
}
