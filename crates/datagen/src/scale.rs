//! The paper's Nx dataset scaling (§6.3) and the million-record
//! streaming generator feeding the out-of-core scale tier.
//!
//! "To extend the original dataset, we uniformly at random select an
//! entity `a` and uniformly at random pick a record `rₐ` referring to
//! `a`, for each record added to the dataset." Note the two-stage
//! uniformity: entities are drawn uniformly (not size-weighted), so
//! scaling flattens the size distribution somewhat — small entities grow
//! as fast as large ones in absolute terms.
//!
//! [`upsample`] materializes the scaled dataset in RAM, which caps it at
//! what fits in memory. [`ScaleGenerator`] instead streams `(record,
//! entity)` pairs one at a time — entity sizes drawn from a capped Zipf
//! distribution as it goes, shingle payloads derived arithmetically from
//! the seed — so piping it into a store builder writes 10⁶+-record store
//! files in constant memory. Everything is a pure function of
//! [`ScaleConfig`]: the same config replays the identical record stream.

use adalsh_data::{
    Dataset, EntityId, FieldDistance, FieldKind, FieldValue, MatchRule, Record, Schema, ShingleSet,
};
use rand::{Rng, SeedableRng};

/// Extends `dataset` to `target_len` records by the paper's process:
/// repeatedly duplicate a uniformly-chosen record of a uniformly-chosen
/// entity. Returns a new dataset; the original records keep their ids
/// `0..n`.
///
/// # Panics
/// Panics if `target_len < dataset.len()`.
pub fn upsample(dataset: &Dataset, target_len: usize, seed: u64) -> Dataset {
    assert!(
        target_len >= dataset.len(),
        "target must not shrink the dataset"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let clusters = dataset.ground_truth_clusters();
    let mut records: Vec<_> = dataset.records().to_vec();
    let mut gt: Vec<u32> = dataset.ground_truth().to_vec();
    while records.len() < target_len {
        let entity = &clusters[rng.random_range(0..clusters.len())];
        let rid = entity[rng.random_range(0..entity.len())];
        records.push(dataset.record(rid).clone());
        gt.push(dataset.entity_of(rid));
    }
    Dataset::new(dataset.schema().clone(), records, gt)
}

/// Configuration of the streaming scale-tier generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleConfig {
    /// Total records to emit.
    pub records: usize,
    /// Stream seed: same config ⇒ bit-identical stream.
    pub seed: u64,
    /// Zipf exponent over entity sizes (larger ⇒ steeper skew).
    pub exponent: f64,
    /// Entity-size cap. Keeps the top-k clusters' `P` verification
    /// (`O(size²)` pairs) tractable at 10⁶+ records; the Zipf tail is
    /// truncated, not resampled.
    pub max_entity_size: usize,
    /// Shingles shared by every record of an entity (the match signal).
    pub core_shingles: usize,
    /// Extra per-record shingles (the noise floor). Must stay small
    /// relative to `core_shingles` for the default rule to hold.
    pub noise_shingles: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        Self {
            records: 10_000,
            seed: 0x5CA1E,
            exponent: 1.5,
            max_entity_size: 256,
            core_shingles: 20,
            noise_shingles: 2,
        }
    }
}

/// The schema [`ScaleGenerator`] records conform to: one shingle field.
pub fn scale_schema() -> Schema {
    Schema::single("tokens", FieldKind::Shingles)
}

/// The match rule the generated entities satisfy: records of one entity
/// share all core shingles and differ only in noise, so their Jaccard
/// distance stays well under 0.4; cross-entity sets are disjoint.
pub fn scale_match_rule() -> MatchRule {
    MatchRule::threshold(0, FieldDistance::Jaccard, 0.4)
}

/// SplitMix64 — local copy of the standard finalizer so shingle payloads
/// are pure arithmetic on (seed, entity, slot) and the generator needs no
/// per-entity state.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Streaming `(record, entity)` source for the scale tier. Entity sizes
/// are drawn one entity at a time from the truncated Zipf distribution
/// `P(s) ∝ s^−exponent, s ∈ 1..=max_entity_size`; records of an entity
/// are emitted consecutively. Memory use is a single record plus a
/// `max_entity_size`-sized sampling table, independent of
/// `config.records`.
pub struct ScaleGenerator {
    config: ScaleConfig,
    /// Cumulative (unnormalized) Zipf weights for sizes `1..=max`.
    cumulative: Vec<f64>,
    rng: rand::rngs::StdRng,
    emitted: usize,
    entity: u32,
    /// Records left to emit for the current entity.
    left_in_entity: usize,
    /// Index of the next record within the current entity.
    slot: u64,
}

impl ScaleGenerator {
    /// Creates the stream for a config.
    ///
    /// # Panics
    /// Panics if `max_entity_size == 0` or `core_shingles == 0`.
    pub fn new(config: ScaleConfig) -> Self {
        assert!(config.max_entity_size > 0, "entity size cap must be >= 1");
        assert!(config.core_shingles > 0, "entities need a core signal");
        let mut acc = 0.0;
        let cumulative = (1..=config.max_entity_size)
            .map(|s| {
                acc += (s as f64).powf(-config.exponent);
                acc
            })
            .collect();
        let rng = rand::rngs::StdRng::seed_from_u64(mix64(config.seed ^ 0x005C_A1E0));
        Self {
            config,
            cumulative,
            rng,
            emitted: 0,
            entity: 0,
            left_in_entity: 0,
            slot: 0,
        }
    }

    /// The generator's schema ([`scale_schema`]).
    pub fn schema(&self) -> Schema {
        scale_schema()
    }

    /// Number of records emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Draws the next entity's size from the truncated Zipf CDF.
    fn draw_entity_size(&mut self) -> usize {
        let total = *self.cumulative.last().expect("cap >= 1");
        let x = self.rng.random::<f64>() * total;
        // Table is max_entity_size long (couple hundred entries);
        // partition_point keeps the draw O(log max).
        self.cumulative.partition_point(|&c| c < x) + 1
    }

    /// The shingle set of record `slot` of entity `entity`: the entity's
    /// core shingles plus per-record noise, all derived via [`mix64`] so
    /// distinct entities collide with probability ≈ 2⁻⁶⁴ per shingle.
    fn shingles(&self, entity: u32, slot: u64) -> Vec<u64> {
        let e = mix64(self.config.seed ^ (u64::from(entity) << 1 | 1));
        let mut out = Vec::with_capacity(self.config.core_shingles + self.config.noise_shingles);
        for j in 0..self.config.core_shingles as u64 {
            out.push(mix64(e ^ j));
        }
        let r = mix64(e ^ (slot.wrapping_add(0xFEED) << 20));
        for j in 0..self.config.noise_shingles as u64 {
            out.push(mix64(r ^ j));
        }
        out
    }
}

impl Iterator for ScaleGenerator {
    type Item = (Record, EntityId);

    fn next(&mut self) -> Option<(Record, EntityId)> {
        if self.emitted >= self.config.records {
            return None;
        }
        if self.left_in_entity == 0 {
            if self.emitted > 0 {
                self.entity += 1;
            }
            // Truncate the final entity to the records that remain so the
            // stream length is exact.
            self.left_in_entity = self
                .draw_entity_size()
                .min(self.config.records - self.emitted);
            self.slot = 0;
        }
        let record = Record::single(FieldValue::Shingles(ShingleSet::new(
            self.shingles(self.entity, self.slot),
        )));
        self.left_in_entity -= 1;
        self.slot += 1;
        self.emitted += 1;
        Some((record, self.entity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_data::{FieldKind, FieldValue, Record, Schema, ShingleSet};

    fn toy() -> Dataset {
        let schema = Schema::single("s", FieldKind::Shingles);
        let mk = |v: u64| Record::single(FieldValue::Shingles(ShingleSet::new(vec![v])));
        Dataset::new(schema, vec![mk(1), mk(1), mk(2), mk(3)], vec![0, 0, 1, 2])
    }

    #[test]
    fn reaches_target_length() {
        let d = toy();
        let up = upsample(&d, 20, 7);
        assert_eq!(up.len(), 20);
    }

    #[test]
    fn prefix_is_the_original() {
        let d = toy();
        let up = upsample(&d, 10, 7);
        for i in 0..d.len() as u32 {
            assert_eq!(up.record(i), d.record(i));
            assert_eq!(up.entity_of(i), d.entity_of(i));
        }
    }

    #[test]
    fn added_records_are_copies_of_existing() {
        let d = toy();
        let up = upsample(&d, 30, 9);
        for i in d.len() as u32..30 {
            let rec = up.record(i);
            let entity = up.entity_of(i);
            assert!(
                (0..d.len() as u32).any(|j| d.record(j) == rec && d.entity_of(j) == entity),
                "record {i} is not a copy"
            );
        }
    }

    #[test]
    fn entity_set_is_preserved() {
        let d = toy();
        let up = upsample(&d, 50, 3);
        assert_eq!(up.num_entities(), d.num_entities());
    }

    #[test]
    fn uniform_entity_choice_flattens_distribution() {
        // Entity 0 starts with 2 of 4 records (50%); after heavy
        // upsampling its expected share tends to 1/3 (uniform over the
        // three entities).
        let d = toy();
        let up = upsample(&d, 4000, 11);
        let share = up.entity_sizes()[0] as f64 / up.len() as f64;
        assert!(
            (0.30..0.40).contains(&share),
            "top share {share} should approach 1/3"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let d = toy();
        let a = upsample(&d, 12, 5);
        let b = upsample(&d, 12, 5);
        assert_eq!(a.ground_truth(), b.ground_truth());
    }

    #[test]
    fn noop_when_target_equals_len() {
        let d = toy();
        let up = upsample(&d, 4, 1);
        assert_eq!(up.len(), 4);
    }

    fn collect(config: &ScaleConfig) -> Dataset {
        let mut records = Vec::new();
        let mut gt = Vec::new();
        for (r, e) in ScaleGenerator::new(config.clone()) {
            records.push(r);
            gt.push(e);
        }
        Dataset::new(scale_schema(), records, gt)
    }

    #[test]
    fn stream_has_exact_length_and_is_deterministic() {
        let cfg = ScaleConfig {
            records: 1234,
            ..ScaleConfig::default()
        };
        let a = collect(&cfg);
        let b = collect(&cfg);
        assert_eq!(a.len(), 1234);
        assert_eq!(a.records(), b.records());
        assert_eq!(a.ground_truth(), b.ground_truth());
    }

    #[test]
    fn entities_are_contiguous_capped_and_zipf_skewed() {
        let cfg = ScaleConfig {
            records: 5000,
            max_entity_size: 64,
            exponent: 1.2,
            ..ScaleConfig::default()
        };
        let d = collect(&cfg);
        // Entity labels are non-decreasing (records emitted entity by
        // entity) and every size respects the cap.
        let gt = d.ground_truth();
        assert!(gt.windows(2).all(|w| w[0] <= w[1]));
        let sizes = d.entity_sizes();
        assert!(sizes.iter().all(|&s| s <= 64), "cap violated: {sizes:?}");
        // Zipf: singletons dominate, but some entities are much larger.
        assert!(sizes[0] >= 8, "largest entity too small: {}", sizes[0]);
        let count_of = |sz: usize| sizes.iter().filter(|&&s| s == sz).count();
        let singles = count_of(1);
        assert!(
            (2..=64).all(|sz| count_of(sz) <= singles),
            "size 1 must be the modal entity size"
        );
    }

    #[test]
    fn generated_entities_satisfy_the_match_rule() {
        let cfg = ScaleConfig {
            records: 400,
            ..ScaleConfig::default()
        };
        let d = collect(&cfg);
        let rule = scale_match_rule();
        // Same-entity pairs match; a sample of cross-entity pairs do not.
        let clusters = d.ground_truth_clusters();
        let big = &clusters[0];
        assert!(big.len() >= 2, "need a multi-record entity");
        assert!(rule.matches(d.record(big[0]), d.record(big[1])));
        let other = clusters
            .iter()
            .find(|c| d.entity_of(c[0]) != d.entity_of(big[0]))
            .expect("more than one entity");
        assert!(!rule.matches(d.record(big[0]), d.record(other[0])));
    }

    #[test]
    fn generator_reports_schema_and_progress() {
        let mut g = ScaleGenerator::new(ScaleConfig {
            records: 10,
            ..ScaleConfig::default()
        });
        assert_eq!(g.schema(), scale_schema());
        assert_eq!(g.emitted(), 0);
        let _ = g.next();
        assert_eq!(g.emitted(), 1);
        assert_eq!(g.by_ref().count(), 9);
        assert_eq!(g.emitted(), 10);
        assert!(g.next().is_none());
    }
}
