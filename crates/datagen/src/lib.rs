//! # adalsh-datagen
//!
//! Synthetic dataset generators standing in for the paper's three
//! evaluation datasets (§6.3), which are external artifacts not available
//! offline. Each generator preserves the properties the algorithms are
//! sensitive to — entity-size distribution, record dimensionality /
//! per-hash cost, and the density of near-threshold distractor pairs —
//! as documented per generator and in `DESIGN.md` §3.
//!
//! * [`cora`] — multi-field publication records (title/authors/rest
//!   shingle sets) matched by an AND-of-(weighted-average, threshold)
//!   rule, like the paper's Cora setup;
//! * [`spotsigs`] — high-dimensional spot-signature sets matched by a
//!   single Jaccard threshold, like SpotSigs;
//! * [`popimages`] — RGB-histogram-like unit vectors matched by an
//!   angular threshold with tunable Zipf exponent, like PopularImages;
//! * [`zipf`] — the shared Zipfian entity-size machinery;
//! * [`upsample`](scale::upsample()) — the paper's Nx dataset scaling
//!   (uniform entity, then uniform record, duplicated in);
//! * [`ScaleGenerator`] — constant-memory
//!   streaming generator for the 10⁶-record out-of-core scale tier.

pub mod cora;
pub mod popimages;
pub mod scale;
pub mod spotsigs;
pub mod zipf;

pub use cora::{CoraConfig, Publication};
pub use popimages::PopImagesConfig;
pub use scale::{scale_match_rule, scale_schema, upsample, ScaleConfig, ScaleGenerator};
pub use spotsigs::SpotSigsConfig;
pub use zipf::zipf_sizes;
