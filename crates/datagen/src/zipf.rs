//! Zipfian entity-size allocation.
//!
//! The paper's datasets have entity sizes following a Zipfian
//! distribution (§1, §6.3): entity `i` (1-based rank) gets a share
//! proportional to `i^(−s)`. [`zipf_sizes`] turns `(num_entities,
//! total_records, exponent)` into concrete integer sizes that sum to
//! exactly `total_records`, largest first, every entity non-empty.

/// Allocates `total_records` across `num_entities` with Zipf exponent
/// `s`, returning sizes in descending order summing exactly to
/// `total_records`.
///
/// # Panics
/// Panics if `num_entities == 0`, `total_records < num_entities`, or the
/// exponent is not finite and positive.
pub fn zipf_sizes(num_entities: usize, total_records: usize, exponent: f64) -> Vec<usize> {
    assert!(num_entities > 0, "need at least one entity");
    assert!(
        total_records >= num_entities,
        "every entity needs at least one record"
    );
    assert!(
        exponent.is_finite() && exponent > 0.0,
        "exponent must be positive"
    );
    let weights: Vec<f64> = (1..=num_entities)
        .map(|i| (i as f64).powf(-exponent))
        .collect();
    let total_w: f64 = weights.iter().sum();
    // First pass: floor of the ideal share, at least 1 each.
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total_w) * total_records as f64).floor().max(1.0) as usize)
        .collect();
    // Distribute the remainder (or claw back an overshoot) greedily from
    // the front, preserving monotonicity.
    let mut assigned: usize = sizes.iter().sum();
    let mut i = 0;
    while assigned < total_records {
        sizes[i % num_entities] += 1;
        assigned += 1;
        i += 1;
    }
    let mut j = num_entities - 1;
    while assigned > total_records {
        // Shrink from the tail, never below 1.
        if sizes[j] > 1 {
            sizes[j] -= 1;
            assigned -= 1;
        }
        j = if j == 0 { num_entities - 1 } else { j - 1 };
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_exactly() {
        for &(n, t, s) in &[(500, 10_000, 1.05), (10, 100, 1.2), (3, 3, 2.0)] {
            let sizes = zipf_sizes(n, t, s);
            assert_eq!(sizes.len(), n);
            assert_eq!(sizes.iter().sum::<usize>(), t);
            assert!(sizes.iter().all(|&x| x >= 1));
        }
    }

    #[test]
    fn descending_order() {
        let sizes = zipf_sizes(100, 5000, 1.1);
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn higher_exponent_concentrates_mass() {
        // Paper §7.4.2 reports top-1 ≈ 500/1000/1700 for exponents
        // 1.05/1.1/1.2 — under a pure rank^(−s) normalization over 500
        // entities those absolutes are not mutually consistent, so we
        // assert the property the experiments actually depend on: a
        // higher exponent strictly concentrates mass at the top.
        let flat = zipf_sizes(500, 10_000, 1.05);
        let mid = zipf_sizes(500, 10_000, 1.1);
        let steep = zipf_sizes(500, 10_000, 1.2);
        assert!(flat[0] < mid[0]);
        assert!(mid[0] < steep[0]);
        // And the top entity is a substantial fraction in all cases.
        assert!(flat[0] > 500, "top-1 {} should dominate", flat[0]);
    }

    #[test]
    fn top_three_follow_power_law_ratios() {
        // s_2/s_1 ≈ 2^(−s) and s_3/s_1 ≈ 3^(−s), within rounding.
        let s = zipf_sizes(500, 10_000, 1.05);
        let r2 = s[1] as f64 / s[0] as f64;
        let r3 = s[2] as f64 / s[0] as f64;
        assert!((r2 - 2f64.powf(-1.05)).abs() < 0.05, "r2 {r2}");
        assert!((r3 - 3f64.powf(-1.05)).abs() < 0.05, "r3 {r3}");
    }

    #[test]
    fn degenerate_one_entity() {
        assert_eq!(zipf_sizes(1, 42, 1.5), vec![42]);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn too_few_records_panics() {
        let _ = zipf_sizes(10, 5, 1.0);
    }
}
