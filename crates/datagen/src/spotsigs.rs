//! SpotSigs-like web-article dataset (paper §6.3).
//!
//! The real SpotSigs corpus is ~2200 web articles, each transformed into
//! a set of *spot signatures*; articles sharing an origin story are the
//! same entity, matched at Jaccard similarity ≥ 0.4 (the paper also
//! tries 0.3 and 0.5). What matters to the algorithms:
//!
//! * records are **high-dimensional** — large signature sets make every
//!   MinHash evaluation expensive, which is what gives adaLSH its 25×
//!   headroom over full-budget LSH on this dataset (§7.2.1);
//! * same-origin articles overlap heavily (within-entity similarity
//!   ≈ 0.75), while *distractor* families of near-miss articles sit just
//!   above the distance threshold;
//! * entity sizes are skewed with a singleton tail.

use adalsh_data::{
    Dataset, FieldDistance, FieldKind, FieldValue, MatchRule, Record, Schema, ShingleSet,
};
use rand::seq::{IndexedRandom, SliceRandom};
use rand::{Rng, SeedableRng};

use crate::zipf::zipf_sizes;

/// Configuration of the SpotSigs-like generator.
#[derive(Debug, Clone, Copy)]
pub struct SpotSigsConfig {
    /// Number of *clustered* origin stories (entities with duplicates).
    /// Singleton articles (see `singleton_frac`) get their own entity
    /// ids after these.
    pub num_entities: usize,
    /// Total records.
    pub num_records: usize,
    /// Fraction of records that are unique articles (size-1 entities) —
    /// the regime where adaptive processing pays: most records are
    /// dismissed with a handful of hash functions (§7.1's "top-k
    /// entities comprise a relatively small portion of the dataset").
    pub singleton_frac: f64,
    /// Spot signatures per base article (the "dimensionality").
    pub sig_size: usize,
    /// Probability a base signature survives into a record.
    pub keep_prob: f64,
    /// Extra (fresh) signatures added per record, as a fraction of
    /// `sig_size`.
    pub extra_frac: f64,
    /// Entities per distractor family (families share a token pool so
    /// cross-entity similarity hovers just *below* the match level).
    pub family_size: usize,
    /// Fraction of a base drawn from the family pool.
    pub family_overlap: f64,
    /// Fraction of each record's signatures drawn from a global pool of
    /// boilerplate signatures (stopword-heavy chains every article
    /// shares). Random record pairs then overlap slightly (~0.3%
    /// similarity) — enough that a 20-function blocking stage glues much
    /// of the corpus into one scattered candidate cluster whose
    /// verification is quadratic, while two-function-per-table schemes
    /// already separate it.
    pub common_frac: f64,
    /// Size of the global boilerplate pool.
    pub common_pool: usize,
    /// Fraction of a clustered entity's records drawn from a *secondary
    /// version* of the story — a heavy rewrite sharing only ~45% of the
    /// base signatures, below the match threshold. Ground truth still
    /// labels them as the entity, so the filtering output's recall tops
    /// out below 1 at k̂ = k and climbs as k̂ grows (the Figure 10–14
    /// regime of the paper's SpotSigs).
    pub secondary_version_frac: f64,
    /// Zipf exponent of entity sizes.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpotSigsConfig {
    fn default() -> Self {
        Self {
            num_entities: 120,
            num_records: 1100,
            singleton_frac: 0.40,
            sig_size: 120,
            keep_prob: 0.90,
            extra_frac: 0.05,
            family_size: 8,
            // Shared-pool draw fraction; with the tight pool below this
            // yields cross-entity similarity ≈ 0.1 — low enough that
            // family super-clusters fragment by the third sequence level,
            // high enough to defeat low-w schemes (the distractor role).
            family_overlap: 0.25,
            common_frac: 0.10,
            common_pool: 200,
            secondary_version_frac: 0.25,
            zipf_exponent: 0.8,
            seed: 0x59_07,
        }
    }
}

/// Replaces a `frac` of the signatures with draws from the global
/// boilerplate pool.
fn mix_in_common(sig: &mut [u64], pool: &[u64], frac: f64, rng: &mut rand::rngs::StdRng) {
    if pool.is_empty() {
        return;
    }
    for t in sig.iter_mut() {
        if rng.random::<f64>() < frac {
            *t = pool[rng.random_range(0..pool.len())];
        }
    }
}

/// The match rule at a given Jaccard *similarity* threshold (the paper's
/// 0.4 default; 0.3/0.5 in §7.3.1): distance threshold `1 − sim`.
pub fn match_rule(similarity_threshold: f64) -> MatchRule {
    assert!((0.0..=1.0).contains(&similarity_threshold));
    MatchRule::threshold(0, FieldDistance::Jaccard, 1.0 - similarity_threshold)
}

/// The single-field schema.
pub fn schema() -> Schema {
    Schema::single("signatures", FieldKind::Shingles)
}

/// Generates a SpotSigs-like dataset.
pub fn generate(config: &SpotSigsConfig) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let num_singletons = (config.num_records as f64 * config.singleton_frac) as usize;
    let clustered_records = config.num_records - num_singletons;
    assert!(
        clustered_records >= config.num_entities,
        "not enough records for the clustered entities"
    );
    let sizes = zipf_sizes(config.num_entities, clustered_records, config.zipf_exponent);

    let fresh_token = |rng: &mut rand::rngs::StdRng| -> u64 { rng.random::<u64>() | 1 };

    // Global boilerplate signatures shared (sparsely) by every article.
    let common_pool: Vec<u64> = (0..config.common_pool)
        .map(|_| fresh_token(&mut rng))
        .collect();

    // Family pools: groups of entities drawing part of their base from a
    // shared pool, creating near-threshold cross-entity pairs. The pool
    // is only slightly larger than each entity's draw, so two family
    // members share ≈ draw²/pool tokens — calibrated to a cross-entity
    // Jaccard similarity of ~0.25 (distance ~0.75, just outside the
    // paper's loosest similarity threshold of 0.3).
    let num_families = config.num_entities.div_ceil(config.family_size);
    let from_pool = (config.sig_size as f64 * config.family_overlap) as usize;
    let pool_size = (from_pool * 6) / 5;
    let pools: Vec<Vec<u64>> = (0..num_families)
        .map(|_| (0..pool_size).map(|_| fresh_token(&mut rng)).collect())
        .collect();

    // Base article per entity.
    let bases: Vec<Vec<u64>> = (0..config.num_entities)
        .map(|e| {
            let pool = &pools[e / config.family_size];
            let mut base: Vec<u64> = pool.choose_multiple(&mut rng, from_pool).copied().collect();
            while base.len() < config.sig_size {
                base.push(fresh_token(&mut rng));
            }
            base
        })
        .collect();

    // Secondary-version bases: heavy rewrites keeping ~35% of the base.
    let vbases: Vec<Vec<u64>> = bases
        .iter()
        .map(|base| {
            base.iter()
                .map(|&t| {
                    if rng.random::<f64>() < 0.35 {
                        t
                    } else {
                        fresh_token(&mut rng)
                    }
                })
                .collect()
        })
        .collect();

    let mut records = Vec::with_capacity(config.num_records);
    let mut gt = Vec::with_capacity(config.num_records);
    for (e, &size) in sizes.iter().enumerate() {
        for r in 0..size {
            // Entities with ≥ 4 records put a fixed fraction of them in
            // the secondary version (deterministic split keeps component
            // sizes stable across seeds).
            let secondary = size >= 4 && (r as f64) < size as f64 * config.secondary_version_frac;
            let base = if secondary { &vbases[e] } else { &bases[e] };
            let mut sig: Vec<u64> = base
                .iter()
                .filter(|_| rng.random::<f64>() < config.keep_prob)
                .copied()
                .collect();
            let extras = (config.sig_size as f64 * config.extra_frac) as usize;
            for _ in 0..extras {
                sig.push(fresh_token(&mut rng));
            }
            if sig.is_empty() {
                sig.push(base[0]);
            }
            mix_in_common(&mut sig, &common_pool, config.common_frac, &mut rng);
            records.push(Record::single(FieldValue::Shingles(ShingleSet::new(sig))));
            gt.push(e as u32);
        }
    }

    // Singleton articles: fully unique stories. They are the "sparse
    // region" of Figure 2 — adaLSH dismisses them after the first couple
    // of sequence functions, while fixed-budget LSH-X spends its whole
    // budget on them.
    for s in 0..num_singletons {
        let mut sig: Vec<u64> = (0..config.sig_size)
            .map(|_| fresh_token(&mut rng))
            .collect();
        mix_in_common(&mut sig, &common_pool, config.common_frac, &mut rng);
        records.push(Record::single(FieldValue::Shingles(ShingleSet::new(sig))));
        gt.push((config.num_entities + s) as u32);
    }

    let mut order: Vec<usize> = (0..records.len()).collect();
    order.shuffle(&mut rng);
    let records = order.iter().map(|&i| records[i].clone()).collect();
    let gt = order.iter().map(|&i| gt[i]).collect();
    Dataset::new(schema(), records, gt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SpotSigsConfig {
        SpotSigsConfig {
            num_entities: 40,
            num_records: 220,
            ..SpotSigsConfig::default()
        }
    }

    fn jaccard_sim(d: &Dataset, a: u32, b: u32) -> f64 {
        d.record(a)
            .field(0)
            .as_shingles()
            .jaccard_similarity(d.record(b).field(0).as_shingles())
    }

    #[test]
    fn shape() {
        let d = generate(&small());
        assert_eq!(d.len(), 220);
        // 40 clustered entities + 40% singleton tail.
        let singletons = (220.0 * 0.40) as usize;
        assert_eq!(d.num_entities(), 40 + singletons);
        assert!(d.entity_sizes().iter().filter(|&&s| s == 1).count() >= singletons);
        assert!(match_rule(0.4).validate(d.schema()).is_ok());
    }

    #[test]
    fn top_entity_is_modest_share() {
        let d = generate(&SpotSigsConfig::default());
        let share = d.entity_sizes()[0] as f64 / d.len() as f64;
        assert!(
            (0.02..0.12).contains(&share),
            "top-1 share {share} should be around 5%"
        );
    }

    #[test]
    fn singletons_do_not_match_clusters() {
        let cfg = small();
        let d = generate(&cfg);
        let rule = match_rule(0.4);
        let clusters = d.ground_truth_clusters();
        let big = &clusters[0];
        // Find a singleton record.
        let singleton = clusters
            .iter()
            .find(|c| c.len() == 1)
            .expect("has singletons")[0];
        assert!(
            !rule.matches(d.record(singleton), d.record(big[0])),
            "singletons must not match clustered entities"
        );
    }

    #[test]
    fn records_are_high_dimensional() {
        let d = generate(&small());
        let mean: f64 = (0..d.len() as u32)
            .map(|i| d.record(i).field(0).as_shingles().len() as f64)
            .sum::<f64>()
            / d.len() as f64;
        assert!(mean > 90.0, "mean signature count {mean}");
    }

    #[test]
    fn within_entity_pairs_split_into_two_tight_versions() {
        let d = generate(&small());
        let clusters = d.ground_truth_clusters();
        let c = &clusters[0];
        // Pair similarities are bimodal: same-version pairs well above
        // the 0.4 match level, cross-version pairs well below it. A few
        // boilerplate-inflated stragglers near the boundary are allowed.
        let mut high = 0usize;
        let mut low = 0usize;
        let mut ambiguous = 0usize;
        for i in 0..c.len() {
            for j in (i + 1)..c.len() {
                let s = jaccard_sim(&d, c[i], c[j]);
                if s > 0.45 {
                    high += 1;
                } else if s < 0.37 {
                    low += 1;
                } else {
                    ambiguous += 1;
                }
            }
        }
        assert!(high > 0, "main version must be tight");
        assert!(low > 0, "secondary version must be split off");
        let total = high + low + ambiguous;
        assert!(
            ambiguous * 20 < total,
            "too many near-boundary pairs: {ambiguous}/{total}"
        );
    }

    #[test]
    fn secondary_fraction_roughly_respected() {
        let cfg = SpotSigsConfig::default();
        let d = generate(&cfg);
        let clusters = d.ground_truth_clusters();
        let big = &clusters[0];
        // Count the records in the largest rule-component of the top
        // entity: should be ≈ (1 − secondary_frac) of the entity.
        let mut best_component = 0usize;
        for &r in big {
            let comp = big.iter().filter(|&&o| jaccard_sim(&d, r, o) > 0.4).count();
            best_component = best_component.max(comp);
        }
        let frac = best_component as f64 / big.len() as f64;
        assert!((0.6..0.9).contains(&frac), "main-component fraction {frac}");
    }

    #[test]
    fn family_distractors_sit_below_match_level() {
        let cfg = small();
        let d = generate(&cfg);
        let clusters = d.ground_truth_clusters();
        // Entities of the same family share the pool: for consecutive
        // entity pairs of family 0, measure the *closest* cross-entity
        // record pair. (The mean over arbitrary representatives is
        // diluted by secondary-version rewrites, which keep only ~35% of
        // the base; the distractor role is about the nearest near-miss
        // pairs.)
        let by_entity: std::collections::HashMap<u32, &Vec<u32>> =
            clusters.iter().map(|c| (d.entity_of(c[0]), c)).collect();
        let mut cross = Vec::new();
        for e in 0..(cfg.family_size as u32 - 1) {
            if let (Some(a), Some(b)) = (by_entity.get(&e), by_entity.get(&(e + 1))) {
                let mut best = 0.0f64;
                for &ra in a.iter() {
                    for &rb in b.iter() {
                        best = best.max(jaccard_sim(&d, ra, rb));
                    }
                }
                cross.push(best);
            }
        }
        assert!(!cross.is_empty());
        let mean = cross.iter().sum::<f64>() / cross.len() as f64;
        assert!(
            (0.05..0.4).contains(&mean),
            "family cross-similarity {mean} should be a near-threshold distractor"
        );
    }

    #[test]
    fn unrelated_entities_nearly_disjoint() {
        let cfg = small();
        let d = generate(&cfg);
        let clusters = d.ground_truth_clusters();
        // Pick two entities from different families.
        let mut reps: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
        for c in &clusters {
            let fam = d.entity_of(c[0]) as usize / cfg.family_size;
            reps.entry(fam).or_insert(c[0]);
        }
        let reps: Vec<u32> = reps.values().copied().collect();
        assert!(reps.len() >= 2);
        let s = jaccard_sim(&d, reps[0], reps[1]);
        assert!(s < 0.05, "different families similarity {s}");
    }

    #[test]
    fn deterministic() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.ground_truth(), b.ground_truth());
        assert_eq!(a.record(3), b.record(3));
    }

    #[test]
    fn match_rule_threshold_conversion() {
        match match_rule(0.4) {
            MatchRule::Threshold { dthr, .. } => assert!((dthr - 0.6).abs() < 1e-12),
            _ => panic!("wrong shape"),
        }
    }
}
