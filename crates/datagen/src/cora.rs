//! Cora-like multi-field publication dataset (paper §6.3).
//!
//! The real Cora is ~2000 scientific-publication records with heavy
//! duplication. This generator preserves what the algorithms see:
//!
//! * three shingle-set fields — `title`, `authors`, `rest`;
//! * the paper's AND match rule: *average* Jaccard similarity of the
//!   title and author sets ≥ 0.7 **and** Jaccard similarity of the rest
//!   ≥ 0.2 (equivalently: weighted-average distance of (title, authors)
//!   ≤ 0.3 AND rest distance ≤ 0.8 — see [`match_rule`]);
//! * small token sets (cheap per-hash cost, in contrast to SpotSigs);
//! * a skewed entity-size distribution whose top entity holds ≈ 5 % of
//!   the records (§7.1's characterization).
//!
//! Records of an entity are noisy copies of a base publication: token
//! dropout and typo substitution at rates calibrated so same-entity
//! pairs safely satisfy the rule while cross-entity pairs (which share
//! vocabulary words) stay below it.

use adalsh_data::rule::WeightedPart;
use adalsh_data::{
    Dataset, FieldDistance, FieldKind, FieldValue, MatchRule, Record, Schema, ShingleSet,
};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::zipf::zipf_sizes;

/// Configuration of the Cora-like generator.
#[derive(Debug, Clone, Copy)]
pub struct CoraConfig {
    /// Number of distinct publications (entities).
    pub num_entities: usize,
    /// Total records.
    pub num_records: usize,
    /// Zipf exponent of entity sizes (0.8 ⇒ top-1 ≈ 5–7 % of records).
    pub zipf_exponent: f64,
    /// Per-token dropout probability when noising a record.
    pub dropout: f64,
    /// Per-token typo probability (token replaced by a corrupted one).
    pub typo: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CoraConfig {
    fn default() -> Self {
        Self {
            num_entities: 220,
            num_records: 1200,
            zipf_exponent: 0.8,
            // Calibrated so two noisy copies keep avg(title, author)
            // Jaccard similarity ≥ 0.7 with wide margin: each token
            // survives unchanged w.p. 0.95, giving pairwise field
            // similarity ≈ 0.87.
            dropout: 0.03,
            typo: 0.02,
            seed: 0xC0_7A,
        }
    }
}

/// The human-readable side of a generated record, for demos and reports.
#[derive(Debug, Clone)]
pub struct Publication {
    /// Paper title.
    pub title: String,
    /// Author list.
    pub authors: String,
    /// Venue / year / pages blob.
    pub rest: String,
}

/// Common domain words; titles mix a few of these with rare terms drawn
/// from a large synthetic vocabulary so cross-entity title similarity
/// stays low (~0.05), as with real publication titles.
const TITLE_WORDS: &[&str] = &[
    "adaptive",
    "learning",
    "entity",
    "resolution",
    "hashing",
    "locality",
    "sensitive",
    "clustering",
    "records",
    "database",
    "query",
    "optimization",
    "distributed",
    "systems",
    "scalable",
    "efficient",
    "approximate",
    "nearest",
    "neighbor",
    "search",
    "graph",
    "streaming",
    "parallel",
    "indexing",
    "similarity",
    "matching",
    "blocking",
    "dedup",
    "networks",
    "probabilistic",
    "models",
    "inference",
    "sampling",
    "sketching",
    "top",
    "ranking",
    "aggregation",
    "joins",
    "transactions",
    "storage",
    "memory",
    "cache",
    "crowdsourcing",
    "quality",
    "cleaning",
    "integration",
    "schemas",
    "knowledge",
];

/// Size of the synthetic rare-term vocabulary mixed into titles.
const RARE_VOCAB: usize = 1500;

const FIRST_NAMES: &[&str] = &[
    "a", "b", "c", "d", "e", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v",
];

const LAST_NAMES: &[&str] = &[
    "garcia",
    "molina",
    "verroios",
    "smith",
    "chen",
    "kumar",
    "ivanov",
    "tanaka",
    "mueller",
    "rossi",
    "silva",
    "kim",
    "papadakis",
    "johnson",
    "lee",
    "wang",
    "brown",
    "davis",
    "martin",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
];

/// Size of the synthetic surname pool appended to [`LAST_NAMES`].
const RARE_SURNAMES: usize = 400;

const VENUES: &[&str] = &[
    "vldb", "sigmod", "icde", "kdd", "www", "cikm", "edbt", "icdm", "pods", "sigir",
];

/// Builds the paper's Cora match rule over the generated schema:
/// `avg-jaccard-sim(title, authors) ≥ 0.7 AND jaccard-sim(rest) ≥ 0.2`.
pub fn match_rule() -> MatchRule {
    MatchRule::And(vec![
        MatchRule::WeightedAverage {
            parts: vec![
                WeightedPart {
                    field: 0,
                    metric: FieldDistance::Jaccard,
                    weight: 0.5,
                },
                WeightedPart {
                    field: 1,
                    metric: FieldDistance::Jaccard,
                    weight: 0.5,
                },
            ],
            dthr: 0.3,
        },
        MatchRule::threshold(2, FieldDistance::Jaccard, 0.8),
    ])
}

/// The schema of generated datasets: `title`, `authors`, `rest`.
pub fn schema() -> Schema {
    Schema::new(vec![
        ("title", FieldKind::Shingles),
        ("authors", FieldKind::Shingles),
        ("rest", FieldKind::Shingles),
    ])
}

/// Generates a Cora-like dataset. Returns the dataset plus the
/// human-readable publication text of every record (index-aligned).
pub fn generate(config: &CoraConfig) -> (Dataset, Vec<Publication>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let sizes = zipf_sizes(
        config.num_entities,
        config.num_records,
        config.zipf_exponent,
    );

    // Base publication per entity.
    struct Base {
        title: Vec<String>,
        authors: Vec<String>,
        rest: Vec<String>,
    }
    let bases: Vec<Base> = (0..config.num_entities)
        .map(|e| {
            // Titles: 2 common domain words + 5-8 rare terms, so two
            // unrelated titles overlap on at most a common word or two.
            let title_len = rng.random_range(5..=8);
            let mut title: Vec<String> = (0..2)
                .map(|_| TITLE_WORDS[rng.random_range(0..TITLE_WORDS.len())].to_string())
                .collect();
            title.extend((0..title_len).map(|_| format!("t{}", rng.random_range(0..RARE_VOCAB))));
            let num_authors = rng.random_range(2..=4);
            let mut authors = Vec::new();
            for _ in 0..num_authors {
                let f = FIRST_NAMES[rng.random_range(0..FIRST_NAMES.len())];
                authors.push(format!("{f}."));
                let pool = LAST_NAMES.len() + RARE_SURNAMES;
                let li = rng.random_range(0..pool);
                authors.push(if li < LAST_NAMES.len() {
                    LAST_NAMES[li].to_string()
                } else {
                    format!("name{li}")
                });
            }
            let rest = vec![
                VENUES[rng.random_range(0..VENUES.len())].to_string(),
                format!("{}", 1990 + (e % 30)),
                format!("vol{}", rng.random_range(1..99)),
                format!("pp{}", rng.random_range(1..999)),
                format!("no{}", rng.random_range(1..30)),
                format!("kw{}", rng.random_range(0..RARE_VOCAB)),
            ];
            Base {
                title,
                authors,
                rest,
            }
        })
        .collect();

    let noise =
        |tokens: &[String], rng: &mut rand::rngs::StdRng, cfg: &CoraConfig| -> Vec<String> {
            let mut out = Vec::with_capacity(tokens.len());
            for t in tokens {
                let r: f64 = rng.random();
                if r < cfg.dropout {
                    continue; // dropped
                } else if r < cfg.dropout + cfg.typo {
                    out.push(format!("{t}~{}", rng.random_range(0..3u8))); // typo
                } else {
                    out.push(t.clone());
                }
            }
            if out.is_empty() {
                out.push(tokens[0].clone()); // never fully erase a field
            }
            out
        };

    let mut records = Vec::with_capacity(config.num_records);
    let mut gt = Vec::with_capacity(config.num_records);
    let mut texts = Vec::with_capacity(config.num_records);
    for (e, &size) in sizes.iter().enumerate() {
        let base = &bases[e];
        for _ in 0..size {
            let title = noise(&base.title, &mut rng, config);
            let authors = noise(&base.authors, &mut rng, config);
            let rest = noise(&base.rest, &mut rng, config);
            records.push(Record::new(vec![
                FieldValue::Shingles(ShingleSet::from_tokens(title.iter())),
                FieldValue::Shingles(ShingleSet::from_tokens(authors.iter())),
                FieldValue::Shingles(ShingleSet::from_tokens(rest.iter())),
            ]));
            texts.push(Publication {
                title: title.join(" "),
                authors: authors.join(" "),
                rest: rest.join(" "),
            });
            gt.push(e as u32);
        }
    }

    // Shuffle so record ids carry no entity signal.
    let mut order: Vec<usize> = (0..records.len()).collect();
    order.shuffle(&mut rng);
    let records = order.iter().map(|&i| records[i].clone()).collect();
    let texts = order.iter().map(|&i| texts[i].clone()).collect();
    let gt = order.iter().map(|&i| gt[i]).collect();

    (Dataset::new(schema(), records, gt), texts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CoraConfig {
        CoraConfig {
            num_entities: 30,
            num_records: 150,
            ..CoraConfig::default()
        }
    }

    #[test]
    fn shape_and_labels() {
        let (d, texts) = generate(&small());
        assert_eq!(d.len(), 150);
        assert_eq!(texts.len(), 150);
        assert_eq!(d.num_entities(), 30);
        assert!(match_rule().validate(d.schema()).is_ok());
    }

    #[test]
    fn top_entity_share_is_moderate() {
        let (d, _) = generate(&CoraConfig::default());
        let share = d.entity_sizes()[0] as f64 / d.len() as f64;
        assert!(
            (0.02..0.15).contains(&share),
            "top-1 share {share} should be around 5%"
        );
    }

    #[test]
    fn same_entity_pairs_mostly_match() {
        let (d, _) = generate(&small());
        let rule = match_rule();
        let clusters = d.ground_truth_clusters();
        let mut total = 0;
        let mut matched = 0;
        for c in clusters.iter().take(5) {
            for i in 0..c.len().min(10) {
                for j in (i + 1)..c.len().min(10) {
                    total += 1;
                    matched += usize::from(rule.matches(d.record(c[i]), d.record(c[j])));
                }
            }
        }
        assert!(total > 10);
        let rate = matched as f64 / total as f64;
        assert!(rate > 0.85, "within-entity match rate {rate}");
    }

    #[test]
    fn cross_entity_pairs_mostly_differ() {
        let (d, _) = generate(&small());
        let rule = match_rule();
        let clusters = d.ground_truth_clusters();
        let mut total = 0;
        let mut matched = 0;
        for a in 0..clusters.len().min(12) {
            for b in (a + 1)..clusters.len().min(12) {
                total += 1;
                matched +=
                    usize::from(rule.matches(d.record(clusters[a][0]), d.record(clusters[b][0])));
            }
        }
        let rate = matched as f64 / total as f64;
        assert!(rate < 0.05, "cross-entity match rate {rate}");
    }

    #[test]
    fn deterministic() {
        let (a, _) = generate(&small());
        let (b, _) = generate(&small());
        assert_eq!(a.ground_truth(), b.ground_truth());
        assert_eq!(a.record(0), b.record(0));
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = generate(&small());
        let (b, _) = generate(&CoraConfig {
            seed: 999,
            ..small()
        });
        assert_ne!(a.ground_truth(), b.ground_truth());
    }

    #[test]
    fn texts_are_nonempty() {
        let (_, texts) = generate(&small());
        assert!(texts
            .iter()
            .all(|t| !t.title.is_empty() && !t.authors.is_empty() && !t.rest.is_empty()));
    }
}
