//! Property-based tests for the dataset generators: structural
//! invariants that must hold for arbitrary configurations.

use adalsh_datagen::popimages::{self, PopImagesConfig};
use adalsh_datagen::spotsigs::{self, SpotSigsConfig};
use adalsh_datagen::{cora, upsample, zipf_sizes, CoraConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn zipf_partitions_any_feasible_input(
        n in 1usize..300,
        extra in 0usize..3000,
        exp_milli in 100u32..2500,
    ) {
        let total = n + extra;
        let sizes = zipf_sizes(n, total, exp_milli as f64 / 1000.0);
        prop_assert_eq!(sizes.len(), n);
        prop_assert_eq!(sizes.iter().sum::<usize>(), total);
        prop_assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        prop_assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn cora_structure_for_any_size(
        entities in 5usize..60,
        per_entity in 2usize..8,
        seed in 0u64..100,
    ) {
        let cfg = CoraConfig {
            num_entities: entities,
            num_records: entities * per_entity,
            seed,
            ..CoraConfig::default()
        };
        let (d, texts) = cora::generate(&cfg);
        prop_assert_eq!(d.len(), entities * per_entity);
        prop_assert_eq!(texts.len(), d.len());
        prop_assert_eq!(d.num_entities(), entities);
        prop_assert!(cora::match_rule().validate(d.schema()).is_ok());
        // Every record's fields are non-empty shingle sets.
        for i in 0..d.len() as u32 {
            for f in d.record(i).fields() {
                prop_assert!(!f.as_shingles().is_empty());
            }
        }
    }

    #[test]
    fn spotsigs_structure_for_any_size(
        entities in 5usize..40,
        per_entity in 3usize..8,
        singleton_pct in 0u32..=50,
        seed in 0u64..100,
    ) {
        let clustered = entities * per_entity;
        let total = (clustered as f64 / (1.0 - singleton_pct as f64 / 100.0)).ceil() as usize;
        let cfg = SpotSigsConfig {
            num_entities: entities,
            num_records: total,
            singleton_frac: singleton_pct as f64 / 100.0,
            seed,
            ..SpotSigsConfig::default()
        };
        let d = spotsigs::generate(&cfg);
        prop_assert_eq!(d.len(), total);
        // Entities = clustered + singletons actually generated.
        let singles = (total as f64 * cfg.singleton_frac) as usize;
        prop_assert_eq!(d.num_entities(), entities + singles);
    }

    #[test]
    fn popimages_unit_vectors_for_any_config(
        entities in 5usize..30,
        per_entity in 2usize..6,
        exp_centi in 100u32..140,
        seed in 0u64..50,
    ) {
        let cfg = PopImagesConfig {
            num_entities: entities,
            num_records: entities * per_entity,
            num_archetypes: (entities / 4).max(2),
            zipf_exponent: exp_centi as f64 / 100.0,
            seed,
            ..PopImagesConfig::default()
        };
        let d = popimages::generate(&cfg);
        prop_assert_eq!(d.len(), entities * per_entity);
        for i in 0..d.len().min(30) as u32 {
            let n = d.record(i).field(0).as_dense().norm();
            prop_assert!((n - 1.0).abs() < 1e-9, "norm {}", n);
        }
    }

    #[test]
    fn upsample_invariants(
        factor in 1usize..6,
        seed in 0u64..100,
    ) {
        let base = spotsigs::generate(&SpotSigsConfig {
            num_entities: 10,
            num_records: 60,
            ..SpotSigsConfig::default()
        });
        let up = upsample(&base, base.len() * factor, seed);
        prop_assert_eq!(up.len(), base.len() * factor);
        prop_assert_eq!(up.num_entities(), base.num_entities());
        // The original is a prefix.
        for i in 0..base.len() as u32 {
            prop_assert_eq!(up.entity_of(i), base.entity_of(i));
        }
    }
}
