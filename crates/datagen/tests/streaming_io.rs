//! Equivalence tests for the streaming JSONL reader on real generator
//! output: driving [`JsonlReader`] record-by-record over a serialized
//! cora or spotsigs dataset must reproduce exactly what the
//! collect-everything [`read_jsonl`] path (and the original in-RAM
//! dataset) holds — same schema, same records, same entities, in the
//! same order.

use std::io::BufReader;

use adalsh_data::io::{read_jsonl, write_jsonl, JsonlReader};
use adalsh_data::{Dataset, EntityId, Record};
use adalsh_datagen::{cora, spotsigs, CoraConfig, SpotSigsConfig};

/// Serializes `dataset`, then drains it back through the streaming
/// reader, checking schema and incremental progress along the way.
fn stream_back(dataset: &Dataset) -> Vec<(Record, EntityId)> {
    let mut bytes = Vec::new();
    write_jsonl(dataset, &mut bytes).unwrap();
    let mut reader = JsonlReader::open(BufReader::new(bytes.as_slice())).unwrap();
    assert_eq!(reader.schema(), dataset.schema());
    let mut out = Vec::new();
    while let Some((record, entity)) = reader.next_record().unwrap() {
        out.push((record, entity));
        assert_eq!(reader.records_seen(), out.len());
    }
    out
}

fn assert_stream_matches(dataset: &Dataset) {
    let streamed = stream_back(dataset);
    assert_eq!(streamed.len(), dataset.len());
    for (id, (record, entity)) in streamed.iter().enumerate() {
        assert_eq!(record, dataset.record(id as u32), "record {id} diverged");
        assert_eq!(
            *entity,
            dataset.entity_of(id as u32),
            "entity {id} diverged"
        );
    }

    // The collect-everything wrapper is definitionally the same stream.
    let mut bytes = Vec::new();
    write_jsonl(dataset, &mut bytes).unwrap();
    let collected = read_jsonl(BufReader::new(bytes.as_slice())).unwrap();
    assert_eq!(collected.len(), dataset.len());
    for id in 0..dataset.len() as u32 {
        assert_eq!(collected.record(id), dataset.record(id));
        assert_eq!(collected.entity_of(id), dataset.entity_of(id));
    }
    assert_eq!(
        collected.ground_truth_clusters(),
        dataset.ground_truth_clusters()
    );
}

/// Cora: multi-field records (two shingle fields + a dense year
/// field) exercise every branch of the line parser.
#[test]
fn streaming_reader_reproduces_cora() {
    let (dataset, _) = cora::generate(&CoraConfig {
        num_records: 300,
        num_entities: 60,
        seed: 21,
        ..CoraConfig::default()
    });
    assert_stream_matches(&dataset);
}

/// SpotSigs: single shingle field, including whatever empty or tiny
/// signature sets the generator produces.
#[test]
fn streaming_reader_reproduces_spotsigs() {
    let dataset = spotsigs::generate(&SpotSigsConfig {
        num_records: 400,
        num_entities: 70,
        seed: 22,
        ..SpotSigsConfig::default()
    });
    assert_stream_matches(&dataset);
}

/// Blank lines between records are part of the tolerated format; the
/// streaming reader must skip them without advancing the record count.
#[test]
fn streaming_reader_skips_blank_lines() {
    let dataset = spotsigs::generate(&SpotSigsConfig {
        num_records: 50,
        num_entities: 10,
        seed: 23,
        ..SpotSigsConfig::default()
    });
    let mut bytes = Vec::new();
    write_jsonl(&dataset, &mut bytes).unwrap();
    let text = String::from_utf8(bytes).unwrap();
    let padded = text.replace('\n', "\n\n");
    let mut reader = JsonlReader::open(BufReader::new(padded.as_bytes())).unwrap();
    let mut n = 0u32;
    while let Some((record, entity)) = reader.next_record().unwrap() {
        assert_eq!(&record, dataset.record(n));
        assert_eq!(entity, dataset.entity_of(n));
        n += 1;
    }
    assert_eq!(n as usize, dataset.len());
}
