//! Cross-crate integration tests: full filtering pipelines over every
//! dataset family, compared against exact resolution.

use adalsh::datagen::popimages::{self, PopImagesConfig};
use adalsh::datagen::spotsigs::{self, SpotSigsConfig};
use adalsh::datagen::{cora, upsample, CoraConfig};
use adalsh::prelude::*;

fn small_spotsigs() -> Dataset {
    spotsigs::generate(&SpotSigsConfig {
        num_entities: 60,
        num_records: 400,
        ..SpotSigsConfig::default()
    })
}

fn small_cora() -> Dataset {
    cora::generate(&CoraConfig {
        num_entities: 80,
        num_records: 400,
        ..CoraConfig::default()
    })
    .0
}

fn small_popimages() -> Dataset {
    popimages::generate(&PopImagesConfig {
        num_entities: 60,
        num_records: 500,
        num_archetypes: 8,
        ..PopImagesConfig::default()
    })
}

/// adaLSH must reproduce the exact (Pairs) top-k output on every dataset
/// family — the paper's §7.1 "adaLSH always gives the same (or very
/// slightly different) outcome as Pairs".
#[test]
fn adalsh_matches_pairs_on_all_families() {
    let cases: Vec<(&str, Dataset, MatchRule, usize)> = vec![
        ("spotsigs", small_spotsigs(), spotsigs::match_rule(0.4), 5),
        ("cora", small_cora(), cora::match_rule(), 5),
        (
            "popimages",
            small_popimages(),
            popimages::match_rule(3.0),
            5,
        ),
    ];
    for (name, dataset, rule, k) in cases {
        let gold = Pairs::new(rule.clone()).filter(&dataset, k);
        let mut ada = AdaLsh::for_dataset(&dataset, AdaLshConfig::new(rule)).unwrap();
        let out = ada.run(&dataset, k);
        let m = set_metrics(&out.records(), &gold.records());
        assert!(
            m.f1 > 0.99,
            "{name}: adaLSH vs Pairs F1 = {} (sizes {:?} vs {:?})",
            m.f1,
            out.clusters.iter().map(Vec::len).collect::<Vec<_>>(),
            gold.clusters.iter().map(Vec::len).collect::<Vec<_>>()
        );
    }
}

/// The filtering output tracks the ground truth well on all families.
/// SpotSigs is *designed* to cap out around 0.8 at k̂ = k (its entities
/// fragment into versions below the match threshold, like the paper's
/// real corpus — Figure 10(b)); the other two should be near-perfect.
#[test]
fn f1_gold_is_high_on_all_families() {
    let cases: Vec<(&str, Dataset, MatchRule, f64)> = vec![
        ("spotsigs", small_spotsigs(), spotsigs::match_rule(0.4), 0.7),
        ("cora", small_cora(), cora::match_rule(), 0.9),
        (
            "popimages",
            small_popimages(),
            popimages::match_rule(3.0),
            0.9,
        ),
    ];
    for (name, dataset, rule, floor) in cases {
        let mut ada = AdaLsh::for_dataset(&dataset, AdaLshConfig::new(rule)).unwrap();
        let out = ada.run(&dataset, 5);
        let m = set_metrics(&out.records(), &dataset.gold_records(5));
        assert!(m.f1 > floor, "{name}: F1 gold = {}", m.f1);
    }
}

/// On SpotSigs, raising k̂ recovers the fragmented secondary versions:
/// recall at k̂ = k is visibly below 1 and climbs with k̂ (Figure 11's
/// headline behaviour).
#[test]
fn spotsigs_recall_climbs_with_khat() {
    let dataset = small_spotsigs();
    let rule = spotsigs::match_rule(0.4);
    let gold = dataset.gold_records(5);
    let mut ada = AdaLsh::for_dataset(&dataset, AdaLshConfig::new(rule)).unwrap();
    let at_k = set_metrics(&ada.run(&dataset, 5).records(), &gold).recall;
    let at_4k = set_metrics(&ada.run(&dataset, 20).records(), &gold).recall;
    assert!(at_k < 0.98, "recall at k̂ = k should be imperfect: {at_k}");
    assert!(
        at_4k > at_k + 0.05,
        "recall must climb with k̂: {at_k} -> {at_4k}"
    );
}

/// LSH-X blocking agrees with Pairs for a range of X (its P stage makes
/// it exact up to missed candidates, which the budgets here prevent).
#[test]
fn lsh_x_exactness_across_budgets() {
    let dataset = small_spotsigs();
    let rule = spotsigs::match_rule(0.4);
    let gold = Pairs::new(rule.clone()).filter(&dataset, 5).records();
    for x in [80, 320, 1280] {
        let out = LshBlocking::new(rule.clone(), x).filter(&dataset, 5);
        let m = set_metrics(&out.records(), &gold);
        assert!(m.f1 > 0.99, "LSH{x}: F1 vs Pairs = {}", m.f1);
    }
}

/// Recall against a fixed gold-k never decreases as k̂ grows.
#[test]
fn khat_recall_is_monotone() {
    let dataset = small_spotsigs();
    let rule = spotsigs::match_rule(0.4);
    let gold = dataset.gold_records(5);
    let mut ada = AdaLsh::for_dataset(&dataset, AdaLshConfig::new(rule)).unwrap();
    let mut prev = 0.0;
    for khat in [5, 8, 12, 16] {
        let out = ada.run(&dataset, khat);
        let recall = set_metrics(&out.records(), &gold).recall;
        assert!(
            recall >= prev - 1e-9,
            "recall must be nondecreasing in k̂ ({prev} -> {recall} at {khat})"
        );
        prev = recall;
    }
}

/// Perfect recovery completes every represented entity; with a modest
/// k̂ > k every gold entity is represented and mAP/mAR reach 1 (the
/// Figure 14(b) behaviour). At k̂ = k they may fall just short — entity
/// fragmentation can misrank a component out of the output.
#[test]
fn perfect_recovery_completes_entities() {
    let dataset = small_spotsigs();
    let rule = spotsigs::match_rule(0.4);
    let mut ada = AdaLsh::for_dataset(&dataset, AdaLshConfig::new(rule)).unwrap();
    let out = ada.run(&dataset, 15);
    let recovered = perfect_recovery(&dataset, &out.records());
    let (map, mar) = map_mar(&recovered, &dataset.ground_truth_clusters(), 5);
    assert!(map > 0.999, "mAP with recovery {map}");
    assert!(mar > 0.999, "mAR with recovery {mar}");
    // And recovery at k̂ = k is already better than no recovery.
    let out_k = ada.run(&dataset, 5);
    let rec_k = perfect_recovery(&dataset, &out_k.records());
    let (_, mar_rec) = map_mar(&rec_k, &dataset.ground_truth_clusters(), 5);
    let (_, mar_raw) = map_mar(&out_k.clusters, &dataset.ground_truth_clusters(), 5);
    assert!(mar_rec >= mar_raw - 1e-12);
}

/// Rule-based recovery can only help recall and never hurts precision
/// against the exact clustering.
#[test]
fn rule_recovery_improves_recall() {
    let dataset = small_spotsigs();
    let rule = spotsigs::match_rule(0.4);
    let mut ada = AdaLsh::for_dataset(&dataset, AdaLshConfig::new(rule.clone())).unwrap();
    let out = ada.run(&dataset, 5);
    let before = set_metrics(&out.records(), &dataset.gold_records(5)).recall;
    let mut stats = Stats::default();
    let rec = rule_recovery(&dataset, &rule, &out.clusters, &mut stats);
    let rec_records: Vec<u32> = rec.iter().flatten().copied().collect();
    let after = set_metrics(&rec_records, &dataset.gold_records(5)).recall;
    assert!(after >= before - 1e-12);
}

/// Incremental mode emits exactly the clusters of the full run, in
/// descending size order (Theorem 2 prefix property).
#[test]
fn incremental_mode_is_prefix_consistent() {
    let dataset = small_spotsigs();
    let rule = spotsigs::match_rule(0.4);
    let mk = || AdaLsh::for_dataset(&dataset, AdaLshConfig::new(rule.clone())).unwrap();
    let full = mk().run(&dataset, 6);
    let mut streamed: Vec<Vec<u32>> = Vec::new();
    let _ = mk().run_incremental(&dataset, 6, |_, c| streamed.push(c.to_vec()));
    // Largest-First streams finals in descending size order…
    assert!(
        streamed.windows(2).all(|w| w[0].len() >= w[1].len()),
        "sizes not descending: {:?}",
        streamed.iter().map(Vec::len).collect::<Vec<_>>()
    );
    // …and the stream holds exactly the finals of the full run. Clusters
    // tied in size may stream in either discovery order (and ties with
    // the k-th final are streamed too), so apply the same canonical
    // (size desc, smallest-id asc) sort + truncation `run` itself uses
    // before comparing.
    assert!(streamed.len() >= full.clusters.len());
    for c in &mut streamed {
        c.sort_unstable();
    }
    streamed.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    streamed.truncate(6);
    assert_eq!(streamed, full.clusters);
}

/// Upsampled (2x/4x) datasets keep pipelines exact, and the upsample
/// preserves the original as a prefix.
#[test]
fn upsampled_pipeline_stays_exact() {
    let base = small_spotsigs();
    let rule = spotsigs::match_rule(0.4);
    for factor in [2usize, 4] {
        let big = upsample(&base, base.len() * factor, 42);
        assert_eq!(big.len(), base.len() * factor);
        let gold = Pairs::new(rule.clone()).filter(&big, 5).records();
        let mut ada = AdaLsh::for_dataset(&big, AdaLshConfig::new(rule.clone())).unwrap();
        let out = ada.run(&big, 5);
        let m = set_metrics(&out.records(), &gold);
        assert!(m.f1 > 0.99, "{factor}x: F1 vs Pairs = {}", m.f1);
    }
}

/// adaLSH must hash dramatically less than single-stage LSH at the same
/// exactness (the headline adaptive-cost claim).
#[test]
fn adaptive_cost_is_sublinear_in_budget() {
    let dataset = small_spotsigs();
    let rule = spotsigs::match_rule(0.4);
    let mut ada = AdaLsh::for_dataset(&dataset, AdaLshConfig::new(rule.clone())).unwrap();
    let ada_out = ada.run(&dataset, 5);
    let lsh_out = LshBlocking::new(rule, 1280).filter(&dataset, 5);
    assert!(
        ada_out.stats.hash_evals * 3 < lsh_out.stats.hash_evals,
        "adaLSH {} evals vs LSH1280 {}",
        ada_out.stats.hash_evals,
        lsh_out.stats.hash_evals
    );
}

/// The engine is reusable: repeated runs are deterministic.
#[test]
fn engine_reuse_is_deterministic() {
    let dataset = small_cora();
    let mut ada = AdaLsh::for_dataset(&dataset, AdaLshConfig::new(cora::match_rule())).unwrap();
    let a = ada.run(&dataset, 3);
    let b = ada.run(&dataset, 3);
    assert_eq!(a.clusters, b.clusters);
    assert_eq!(a.stats.hash_evals, b.stats.hash_evals);
}

/// Different engine seeds agree on the answer (the algorithm is robust
/// to its own randomness).
#[test]
fn seeds_agree_on_output() {
    let dataset = small_spotsigs();
    let rule = spotsigs::match_rule(0.4);
    let mut outputs = Vec::new();
    for seed in [1u64, 2, 3] {
        let mut cfg = AdaLshConfig::new(rule.clone());
        cfg.spec.seed = seed;
        let mut ada = AdaLsh::for_dataset(&dataset, cfg).unwrap();
        outputs.push(ada.run(&dataset, 5).records());
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
}

/// Cost-model noise (Appendix E.2) shifts work between hashing and P but
/// must not change the answer.
#[test]
fn cost_noise_does_not_change_output() {
    let dataset = small_spotsigs();
    let rule = spotsigs::match_rule(0.4);
    let mut baseline = None;
    for nf in [0.2, 1.0, 5.0] {
        let mut cfg = AdaLshConfig::new(rule.clone());
        cfg.cost_noise = nf;
        let mut ada = AdaLsh::for_dataset(&dataset, cfg).unwrap();
        let records = ada.run(&dataset, 5).records();
        match &baseline {
            None => baseline = Some(records),
            Some(b) => {
                let m = set_metrics(&records, b);
                assert!(m.f1 > 0.99, "nf={nf} changed the output: F1 {}", m.f1);
            }
        }
    }
}
